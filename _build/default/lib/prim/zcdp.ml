type rho = float

let of_gaussian ~sigma ~l2_sensitivity =
  if not (sigma > 0.) then invalid_arg "Zcdp.of_gaussian: sigma must be positive";
  l2_sensitivity *. l2_sensitivity /. (2. *. sigma *. sigma)

let of_pure_dp ~eps =
  if not (eps > 0.) then invalid_arg "Zcdp.of_pure_dp: eps must be positive";
  eps *. eps /. 2.

let compose rhos =
  List.iter (fun r -> if r < 0. then invalid_arg "Zcdp.compose: negative rho") rhos;
  List.fold_left ( +. ) 0. rhos

let to_dp rho ~delta =
  if rho < 0. then invalid_arg "Zcdp.to_dp: negative rho";
  if not (delta > 0. && delta < 1.) then invalid_arg "Zcdp.to_dp: delta must be in (0, 1)";
  Dp.v ~eps:(rho +. (2. *. sqrt (rho *. log (1. /. delta)))) ~delta

let eps_budget_to_rho ~eps ~delta =
  if not (eps > 0.) then invalid_arg "Zcdp.eps_budget_to_rho: eps must be positive";
  (* eps(ρ) = ρ + 2√(ρ·ln(1/δ)) is strictly increasing; bisect. *)
  let target = eps in
  let rec bisect lo hi iters =
    if iters = 0 then lo
    else
      let mid = 0.5 *. (lo +. hi) in
      if Dp.eps (to_dp mid ~delta) > target then bisect lo mid (iters - 1)
      else bisect mid hi (iters - 1)
  in
  bisect 0. eps 80

let gaussian_sigma ~rho ~l2_sensitivity =
  if not (rho > 0.) then invalid_arg "Zcdp.gaussian_sigma: rho must be positive";
  l2_sensitivity /. sqrt (2. *. rho)

let per_mechanism_rho ~total_rho ~k =
  if k <= 0 then invalid_arg "Zcdp.per_mechanism_rho: k must be positive";
  if total_rho < 0. then invalid_arg "Zcdp.per_mechanism_rho: negative rho";
  total_rho /. float_of_int k

type ledger = { mutable items : (string * rho) list }

let ledger () = { items = [] }

let spend l ?(label = "anon") rho =
  if rho < 0. then invalid_arg "Zcdp.spend: negative rho";
  l.items <- (label, rho) :: l.items

let spent l = compose (List.map snd l.items)
let spent_dp l ~delta = to_dp (spent l) ~delta
let entries l = List.rev l.items
