type planted = {
  points : Geometry.Vec.t array;
  cluster_center : Geometry.Vec.t;
  cluster_radius : float;
  cluster_size : int;
  cluster_indices : int array;
}

let ball_point rng ~center ~radius =
  let d = Geometry.Vec.dim center in
  let dir = Prim.Rng.gaussian_vector rng ~dim:d ~sigma:1.0 in
  let norm = Geometry.Vec.norm2 dir in
  let dir =
    if norm < 1e-12 then Array.init d (fun i -> if i = 0 then 1. else 0.)
    else Geometry.Vec.scale (1. /. norm) dir
  in
  let u = Prim.Rng.float rng 1.0 in
  let r = radius *. (u ** (1. /. float_of_int d)) in
  Geometry.Vec.add center (Geometry.Vec.scale r dir)

let interior_center rng ~grid ~margin =
  let d = Geometry.Grid.dim grid in
  let lo = Float.min margin 0.5 and hi = Float.max (1. -. margin) 0.5 in
  Array.init d (fun _ -> Prim.Rng.uniform rng ~lo ~hi)

let uniform rng ~grid ~n =
  Array.init n (fun _ -> Geometry.Grid.random_point grid rng)

let planted_ball rng ~grid ~n ~cluster_fraction ~cluster_radius =
  if not (cluster_fraction > 0. && cluster_fraction <= 1.) then
    invalid_arg "Synth.planted_ball: cluster_fraction in (0, 1]";
  let cluster_size = max 1 (int_of_float (cluster_fraction *. float_of_int n)) in
  let center = interior_center rng ~grid ~margin:(2. *. cluster_radius) in
  let snap = Geometry.Grid.snap grid in
  let points =
    Array.init n (fun i ->
        if i < cluster_size then snap (ball_point rng ~center ~radius:cluster_radius)
        else Geometry.Grid.random_point grid rng)
  in
  (* Snapping moves every point by at most (√d/2)·step, so the planted ball
     inflated by the snap error still covers the planted points. *)
  let snap_slack = Geometry.Grid.diameter grid *. Geometry.Grid.step grid /. 2. in
  {
    points;
    cluster_center = snap center;
    cluster_radius = cluster_radius +. (2. *. snap_slack);
    cluster_size;
    cluster_indices = Array.init cluster_size (fun i -> i);
  }

(* Pinning the cluster at a corner makes centrality-based aggregation land
   in empty space: the uniform background pulls every coordinate's
   mean/median toward 1/2, away from the only tight ball.  (A decoy *ball*
   would not do: any heavy ball is itself a valid 1-cluster answer.) *)
let adversarial_minority rng ~grid ~n ~cluster_fraction ~cluster_radius =
  let base = planted_ball rng ~grid ~n ~cluster_fraction ~cluster_radius in
  if cluster_fraction >= 0.5 then base
  else begin
    let d = Geometry.Grid.dim grid in
    let snap = Geometry.Grid.snap grid in
    let corner = snap (Array.make d (Float.max 0.1 (2.5 *. cluster_radius))) in
    let points =
      Array.mapi
        (fun i p ->
          if i < base.cluster_size then snap (ball_point rng ~center:corner ~radius:cluster_radius)
          else p)
        base.points
    in
    { base with points; cluster_center = corner }
  end

type multi = {
  all_points : Geometry.Vec.t array;
  centers : Geometry.Vec.t array;
  radii : float array;
  sizes : int array;
}

let planted_balls rng ~grid ~n ~k ~cluster_radius ~noise_fraction =
  if k < 1 then invalid_arg "Synth.planted_balls: k must be >= 1";
  let noise = int_of_float (noise_fraction *. float_of_int n) in
  let per = (n - noise) / k in
  let snap = Geometry.Grid.snap grid in
  let centers =
    Array.init k (fun _ -> interior_center rng ~grid ~margin:(2. *. cluster_radius))
  in
  let cluster_points =
    Array.concat
      (List.map
         (fun c -> Array.init per (fun _ -> snap (ball_point rng ~center:c ~radius:cluster_radius)))
         (Array.to_list centers))
  in
  let noise_points = uniform rng ~grid ~n:(n - (per * k)) in
  {
    all_points = Array.append cluster_points noise_points;
    centers = Array.map snap centers;
    radii = Array.make k cluster_radius;
    sizes = Array.make k per;
  }

type contaminated = {
  data : Geometry.Vec.t array;
  inlier_center : Geometry.Vec.t;
  inlier_radius : float;
  outlier_indices : int array;
}

let with_outliers rng ~grid ~n ~outlier_fraction ~inlier_radius =
  if not (outlier_fraction >= 0. && outlier_fraction < 1.) then
    invalid_arg "Synth.with_outliers: outlier_fraction in [0, 1)";
  let outliers = int_of_float (outlier_fraction *. float_of_int n) in
  let inliers = n - outliers in
  let center = interior_center rng ~grid ~margin:(2. *. inlier_radius) in
  let snap = Geometry.Grid.snap grid in
  let data =
    Array.init n (fun i ->
        if i < inliers then snap (ball_point rng ~center ~radius:inlier_radius)
        else Geometry.Grid.random_point grid rng)
  in
  {
    data;
    inlier_center = snap center;
    inlier_radius;
    outlier_indices = Array.init outliers (fun i -> inliers + i);
  }

let estimator_outputs rng ~grid ~k ~good_fraction ~good_center ~good_radius =
  if not (good_fraction >= 0. && good_fraction <= 1.) then
    invalid_arg "Synth.estimator_outputs: good_fraction in [0, 1]";
  let good = int_of_float (good_fraction *. float_of_int k) in
  let snap = Geometry.Grid.snap grid in
  Array.init k (fun i ->
      if i < good then snap (ball_point rng ~center:good_center ~radius:good_radius)
      else Geometry.Grid.random_point grid rng)
