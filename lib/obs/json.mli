(** Minimal JSON emitter and parser (no external dependencies).

    The emitter renders with deterministic formatting (2-space indent, or
    compact with [~indent:false]); non-finite floats render as [null].
    The parser is strict standard JSON; numbers without a fraction or
    exponent that fit an OCaml [int] parse to {!Int}, everything else to
    {!Float}; [\uXXXX] escapes (including surrogate pairs) decode to
    UTF-8.

    [Engine.Json] re-exports this module, so existing engine call sites
    are unchanged. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val to_string : ?indent:bool -> t -> string
(** Render; [indent] defaults to [true]. *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON value; the whole input must be consumed (trailing
    whitespace allowed).  Errors carry a byte offset. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** [member k (Obj _)] is the first binding of [k]; [None] otherwise. *)

val to_list : t -> t list option
val to_float : t -> float option
(** Accepts both {!Float} and {!Int}. *)

val to_int : t -> int option
val to_str : t -> string option
