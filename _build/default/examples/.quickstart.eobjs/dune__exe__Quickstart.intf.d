examples/quickstart.mli:
