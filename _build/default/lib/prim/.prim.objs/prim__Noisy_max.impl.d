lib/prim/noisy_max.ml: Array Rng
