(** Declarative serving SLO rules.

    A rule names a signal (a latency quantile per verb, a budget
    burn-rate per tenant/dataset, the queue shed rate) and two
    thresholds; evaluation against an {!observations} record yields one
    {!verdict} per matched subject with status [Ok]/[Warn]/[Firing] and
    a human-readable reason string.  The module knows nothing about the
    daemon: callers supply the signals as thunks, which keeps [Obs]
    free of dependencies on the engine and server layers.

    Rules have a stable one-line text form ({!rule_of_line} /
    {!rule_to_line}) so the daemon can accept [--slo RULE] flags:

    {v
    latency q=0.99 verb=run warn_ms=500 fire_ms=2000
    burn tenant=* dataset=* warn=0.5 fire=1.0
    shed warn=0.01 fire=0.10
    v}

    [verb=*] (or omitting the key) matches every observed subject. *)

type status = Ok | Warn | Firing

val status_to_string : status -> string
(** ["ok"], ["warn"], ["firing"]. *)

val status_of_string : string -> status option
val worst : status list -> status

type rule =
  | Latency of { verb : string option; q : float; warn_s : float; fire_s : float }
      (** [verb = None] matches every observed verb. *)
  | Burn_rate of {
      tenant : string option;
      dataset : string option;
      warn_per_hour : float;  (** Fraction of the epsilon budget per hour. *)
      fire_per_hour : float;
    }
  | Shed_rate of { warn : float; fire : float }
      (** Shed requests as a fraction of submissions. *)

val rule_to_line : rule -> string
val rule_of_line : string -> (rule, string) result
(** Inverse of {!rule_to_line}; errors name the offending token. *)

val default_rules : rule list
(** p99 latency over every verb (warn 0.5 s / fire 2 s), burn-rate over
    every tenant × dataset (warn 0.5 / fire 1.0 budget-fractions per
    hour), shed rate (warn 1% / fire 10%). *)

type observations = {
  latencies : unit -> (string * Hist.snapshot) list;
      (** Per-verb request latency, merged over tenants. *)
  burn_rates : unit -> (string * string * float) list;
      (** [(tenant, dataset, eps-budget-fraction per hour)]. *)
  shed_rate : unit -> float * int;
      (** [(shed fraction, total submissions)]; fraction 0 when idle. *)
}

type verdict = {
  rule : string;  (** {!rule_to_line} of the generating rule. *)
  subject : string;  (** e.g. ["verb=run"] or ["tenant=acme dataset=d1"]. *)
  status : status;
  reason : string;
}

val eval : observations -> rule -> verdict list
(** Wildcard rules expand to one verdict per observed subject; a rule
    pinned to an unobserved subject yields a single [Ok] verdict with
    reason ["no observations"]. *)

val eval_all : observations -> rule list -> verdict list
val worst_of : verdict list -> status
val verdict_to_json : verdict -> Json.t
val verdict_of_json : Json.t -> verdict option
