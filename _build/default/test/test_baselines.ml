(* The Table-1 comparators. *)

open Testutil

(* --- Nonprivate --- *)

let test_nonprivate_1d_exact () =
  let pts = Array.map (fun x -> [| x |]) [| 0.1; 0.12; 0.14; 0.8; 0.9 |] in
  let a = Baselines.Nonprivate.solve (Geometry.Pointset.create pts) ~t:3 in
  check_true "exact flag in 1-D" a.Baselines.Nonprivate.exact;
  check_float ~tol:1e-12 "optimal radius" 0.02 a.Baselines.Nonprivate.radius

let test_nonprivate_bounds_sandwich () =
  let r = rng () in
  let pts = Array.init 100 (fun _ -> [| Prim.Rng.float r 1.0; Prim.Rng.float r 1.0 |]) in
  let ps = Geometry.Pointset.create pts in
  let lo, hi = Baselines.Nonprivate.r_opt_bounds ps ~t:50 in
  check_true "lo <= hi" (lo <= hi);
  check_true "feasible at hi" (hi > 0.);
  let b = Baselines.Nonprivate.two_approx ps ~t:50 in
  check_true "two_approx within sandwich x2" (b.Baselines.Nonprivate.radius <= 2. *. hi +. 1e-9)

(* --- Exponential-mechanism solver --- *)

let test_exp_mech_cluster () =
  let r = rng ~seed:91 () in
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:2 in
  let w = Workload.Synth.planted_ball r ~grid ~n:600 ~cluster_fraction:0.4 ~cluster_radius:0.05 in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  let t = 200 in
  let res = Baselines.Exp_mech_cluster.run r ~grid ~eps:2.0 ~t ps in
  check_int "candidates" (64 * 64) res.Baselines.Exp_mech_cluster.candidates;
  let covered =
    Geometry.Pointset.ball_count ps ~center:res.Baselines.Exp_mech_cluster.center
      ~radius:(2. *. res.Baselines.Exp_mech_cluster.radius)
  in
  check_true (Printf.sprintf "covers most of t (%d/%d)" covered t) (covered >= t - 60)

let test_exp_mech_refuses_blowup () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:8 in
  check_true "count saturates"
    (Baselines.Exp_mech_cluster.candidate_count grid > Baselines.Exp_mech_cluster.max_candidates);
  Alcotest.check_raises "refuses"
    (Invalid_argument
       "Exp_mech_cluster.run: candidate set too large (that is the point of the paper)")
    (fun () ->
      ignore
        (Baselines.Exp_mech_cluster.run r ~grid ~eps:1.0 ~t:1
           (Geometry.Pointset.create [| Array.make 8 0.5 |])))

(* --- Threshold release --- *)

let test_tree_counts_accurate () =
  let r = rng ~seed:93 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:1 in
  let values = Array.init 2000 (fun i -> float_of_int (i mod 256) /. 255.) in
  let tree = Baselines.Threshold_release.release r ~grid ~eps:2.0 values in
  check_true "levels about log |X|" (Baselines.Threshold_release.levels tree >= 8);
  (* True count in [0.25, 0.5] vs released. *)
  let truth =
    Array.fold_left (fun acc x -> if x >= 0.25 && x <= 0.5 then acc + 1 else acc) 0 values
  in
  let est = Baselines.Threshold_release.range_count tree ~lo:0.25 ~hi:0.5 in
  let bound = Baselines.Threshold_release.query_error_bound ~grid ~eps:2.0 ~beta:0.05 in
  check_true
    (Printf.sprintf "range count %.0f within %.0f of %d" est bound truth)
    (Float.abs (est -. float_of_int truth) <= bound)

let test_tree_full_range_total () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:1 in
  let values = Array.init 500 (fun _ -> Prim.Rng.float r 1.0) in
  let tree = Baselines.Threshold_release.release r ~grid ~eps:2.0 values in
  let est = Baselines.Threshold_release.range_count tree ~lo:0. ~hi:1. in
  check_true "total roughly n" (Float.abs (est -. 500.) < 80.)

let test_threshold_release_finds_interval () =
  let r = rng ~seed:95 () in
  let grid = Geometry.Grid.create ~axis_size:1024 ~dim:1 in
  let w = Workload.Synth.planted_ball r ~grid ~n:3000 ~cluster_fraction:0.5 ~cluster_radius:0.03 in
  let values = Array.map (fun p -> p.(0)) w.Workload.Synth.points in
  let t = 1350 in
  let res = Baselines.Threshold_release.run r ~grid ~eps:2.0 ~beta:0.1 ~t values in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  let covered =
    Geometry.Pointset.ball_count ps ~center:res.Baselines.Threshold_release.center
      ~radius:(res.Baselines.Threshold_release.radius +. 0.01)
  in
  check_true
    (Printf.sprintf "interval captures most of t (%d/%d)" covered t)
    (covered > t - 700);
  check_true "radius near optimal (w = 1 row)"
    (res.Baselines.Threshold_release.radius <= 3. *. w.Workload.Synth.cluster_radius)

let test_smallest_interval_direct () =
  let r = rng ~seed:101 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:1 in
  (* 500 points packed into [0.40, 0.44], 100 spread out. *)
  let values =
    Array.init 600 (fun i ->
        if i < 500 then 0.40 +. Prim.Rng.float r 0.04 else Prim.Rng.float r 1.0)
  in
  let tree = Baselines.Threshold_release.release r ~grid ~eps:4.0 values in
  let res = Baselines.Threshold_release.smallest_interval tree ~t:450 ~slack:50. in
  check_true "centered on the packed region"
    (Float.abs (res.Baselines.Threshold_release.center.(0) -. 0.42) < 0.05);
  check_true "short interval" (res.Baselines.Threshold_release.radius < 0.1);
  check_true "estimated count plausible" (res.Baselines.Threshold_release.estimated_count > 300.)

let test_tree_requires_1d () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:16 ~dim:2 in
  Alcotest.check_raises "1-D only"
    (Invalid_argument "Threshold_release.release: grid must be 1-D") (fun () ->
      ignore (Baselines.Threshold_release.release r ~grid ~eps:1.0 [| 0.5 |]))

(* --- Private aggregation --- *)

let test_coordinate_median () =
  let r = rng ~seed:97 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:1 in
  let coords = Array.init 1001 (fun i -> float_of_int i /. 2000.) in
  (* True median 0.25; private median lands close at high eps. *)
  let m = Baselines.Private_agg.coordinate_median r ~grid ~eps:4.0 coords in
  check_in_range "median close" ~lo:0.2 ~hi:0.3 m

let test_private_agg_majority () =
  let r = rng ~seed:99 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w = Workload.Synth.planted_ball r ~grid ~n:1500 ~cluster_fraction:0.8 ~cluster_radius:0.05 in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  let res = Baselines.Private_agg.run r ~grid ~eps:2.0 ~t:1000 ps in
  check_true "center inside cluster ball"
    (Geometry.Vec.dist res.Baselines.Private_agg.center w.Workload.Synth.cluster_center
    < 3. *. w.Workload.Synth.cluster_radius);
  let covered =
    Geometry.Pointset.ball_count ps ~center:res.Baselines.Private_agg.center
      ~radius:res.Baselines.Private_agg.radius
  in
  check_true "radius search covers" (covered > 800)

let test_gupt_average () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let points = Array.init 5000 (fun _ -> [| 0.4; 0.6 |]) in
  let avg = Baselines.Private_agg.gupt_average r ~grid ~eps:1.0 ~delta:1e-6 points in
  check_float ~tol:0.02 "x" 0.4 avg.(0);
  check_float ~tol:0.02 "y" 0.6 avg.(1)

let suite =
  [
    case "non-private exact 1-D" test_nonprivate_1d_exact;
    case "non-private sandwich" test_nonprivate_bounds_sandwich;
    case "exp-mech cluster" test_exp_mech_cluster;
    case "exp-mech refuses blowup" test_exp_mech_refuses_blowup;
    case "tree counts accurate" test_tree_counts_accurate;
    case "tree full-range total" test_tree_full_range_total;
    case "threshold release finds the interval" test_threshold_release_finds_interval;
    case "smallest interval direct" test_smallest_interval_direct;
    case "tree requires 1-D" test_tree_requires_1d;
    case "coordinate median" test_coordinate_median;
    case "private-agg on a majority cluster" test_private_agg_majority;
    case "gupt average" test_gupt_average;
  ]
