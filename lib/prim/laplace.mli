(** The Laplace mechanism (Theorem 2.3, Dwork–McSherry–Nissim–Smith).

    For a function [f] of L1-sensitivity [k], releasing [f(S) + Lap(k/ε)] in
    each coordinate is [(ε, 0)]-differentially private.  GoodRadius uses this
    on the sensitivity-2 score [L(0, S)] (step 2 of Algorithm 1), and it is
    the workhorse behind noisy counting throughout the baselines. *)

val noise : Rng.t -> eps:float -> sensitivity:float -> float
(** One draw from Lap(sensitivity/ε). *)

val scalar : Rng.t -> eps:float -> sensitivity:float -> float -> float
(** [scalar rng ~eps ~sensitivity x] releases [x] with Laplace noise
    calibrated to the given L1 sensitivity. *)

val count : Rng.t -> eps:float -> int -> float
(** Noisy counting query: sensitivity 1. *)

val vector : Rng.t -> eps:float -> l1_sensitivity:float -> float array -> float array
(** Adds iid Lap(l1_sensitivity/ε) noise to every coordinate.  Private
    because the whole vector has the stated L1 sensitivity. *)

val tail_bound : eps:float -> sensitivity:float -> beta:float -> float
(** [tail_bound ~eps ~sensitivity ~beta] is the magnitude [m] such that one
    Laplace draw exceeds [m] in absolute value with probability at most
    [beta]:  [m = (sensitivity/ε) · ln(1/beta)].  Used by utility analyses
    (e.g. the [4/ε · ln(2/β)] slack in GoodRadius step 2). *)

val cdf : eps:float -> sensitivity:float -> ?mu:float -> float -> float
(** The exact CDF of one released value centered at [mu] (the true answer):
    [P(mu + Lap(sensitivity/ε) ≤ x)].  This is the reference law the
    statistical verification harness ({!Check}) tests empirical samples
    against — kept here so test and mechanism can never disagree about the
    intended scale. *)
