type answer = { center : Geometry.Vec.t; radius : float; exact : bool }

let solve ps ~t =
  if Geometry.Pointset.dim ps = 1 then begin
    let coords = Geometry.Pointset.coords_axis ps 0 in
    let b = Geometry.Seb.exact_1d coords ~t in
    { center = b.Geometry.Seb.center; radius = b.Geometry.Seb.radius; exact = true }
  end
  else begin
    let b = Geometry.Seb.t_ball_heuristic ps ~t in
    { center = b.Geometry.Seb.center; radius = b.Geometry.Seb.radius; exact = false }
  end

let two_approx ps ~t =
  let b = Geometry.Seb.two_approx ps ~t in
  { center = b.Geometry.Seb.center; radius = b.Geometry.Seb.radius; exact = false }

let r_opt_bounds ps ~t =
  let approx2 = Geometry.Seb.two_approx ps ~t in
  let best = solve ps ~t in
  let hi = Float.min approx2.Geometry.Seb.radius best.radius in
  let lo = if best.exact then best.radius else approx2.Geometry.Seb.radius /. 2. in
  (lo, hi)
