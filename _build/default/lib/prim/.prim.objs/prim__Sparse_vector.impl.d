lib/prim/sparse_vector.ml: Rng
