(* Shared helpers for the test-suite. *)

(* Every statistical test in the suite derives its generator from this one
   seed, so a flaky failure is reproducible: the failure message prints the
   seed, and PRIVCLUSTER_TEST_SEED re-runs the whole suite under it. *)
let suite_seed =
  match Sys.getenv_opt "PRIVCLUSTER_TEST_SEED" with
  | None | Some "" -> 424242
  | Some s -> (
      match int_of_string_opt s with
      | Some v -> v
      | None -> invalid_arg "PRIVCLUSTER_TEST_SEED must be an integer")

(* The deep statistical tier (large-sample distinguisher runs, the utility
   certifier) only runs when PRIVCLUSTER_DEEP_CHECKS=1 — see TESTING.md. *)
let deep_checks =
  match Sys.getenv_opt "PRIVCLUSTER_DEEP_CHECKS" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let rng ?seed () = Prim.Rng.create ~seed:(Option.value seed ~default:suite_seed) ()

(* A generator on a per-test-name stream of the suite seed: independent
   across tests, reproducible across runs and test orderings. *)
let rng_named name = Prim.Rng.derive (rng ()) ~stream:(Hashtbl.hash name)

let check_float ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.3g)" msg expected actual tol

let check_in_range msg ~lo ~hi actual =
  if not (actual >= lo && actual <= hi) then
    Alcotest.failf "%s: %.12g not in [%.12g, %.12g]" msg actual lo hi

let check_true msg b = Alcotest.(check bool) msg true b
let check_int msg expected actual = Alcotest.(check int) msg expected actual

(* Sample mean / variance for sampler statistics. *)
let stats samples =
  let n = float_of_int (Array.length samples) in
  let mean = Array.fold_left ( +. ) 0. samples /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples /. (n -. 1.)
  in
  (mean, var)

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A small deterministic planted-cluster workload used by several suites. *)
let small_workload ?(seed = 3) ?(n = 400) ?(dim = 2) ?(axis = 128) ?(fraction = 0.5)
    ?(radius = 0.06) () =
  let r = rng ~seed () in
  let grid = Geometry.Grid.create ~axis_size:axis ~dim in
  let w = Workload.Synth.planted_ball r ~grid ~n ~cluster_fraction:fraction ~cluster_radius:radius in
  (r, grid, w)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* Statistical cases: the body receives a generator on the test's own
   stream of the suite seed, and a failure prints how to reproduce it. *)
let with_seed_trace name f () =
  try f (rng_named name)
  with e ->
    Printf.eprintf
      "statistical case %S failed under suite seed %d (re-run: PRIVCLUSTER_TEST_SEED=%d)\n%!"
      name suite_seed suite_seed;
    raise e

let stat_case name f = Alcotest.test_case name `Quick (with_seed_trace name f)
let stat_slow_case name f = Alcotest.test_case name `Slow (with_seed_trace name f)

(* Deep-tier case: present only under PRIVCLUSTER_DEEP_CHECKS=1. *)
let deep_case name f =
  if deep_checks then [ Alcotest.test_case name `Slow (with_seed_trace name f) ] else []
