lib/prim/stability_hist.mli: Rng
