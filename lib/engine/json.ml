type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf ~indent ~depth v =
  let pad d = if indent then Buffer.add_string buf (String.make (2 * d) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_nan x || Float.abs x = Float.infinity then Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.12g" x)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          emit buf ~indent ~depth:(depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          emit buf ~indent ~depth:(depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~depth:0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)
