examples/map_search.ml: Array Float Geometry List Prim Printf Privcluster Workload
