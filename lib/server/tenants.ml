type spec = { name : string; token : string; max_in_flight : int }

let spec_of_string s =
  match String.split_on_char ':' s with
  | [ name; token ] | [ name; token; "" ] ->
      if name = "" || token = "" then Error "tenant spec: empty name or token"
      else Ok { name; token; max_in_flight = 8 }
  | [ name; token; cap ] -> (
      if name = "" || token = "" then Error "tenant spec: empty name or token"
      else
        match int_of_string_opt cap with
        | Some cap when cap > 0 -> Ok { name; token; max_in_flight = cap }
        | _ -> Error (Printf.sprintf "tenant spec: bad in-flight cap %S" cap))
  | _ -> Error (Printf.sprintf "tenant spec %S: expected name:token[:max_in_flight]" s)

type tenant = {
  t_name : string;
  token : string;
  cap : int;
  svc : Engine.Service.t;
  counter : Admission.counter;
}

type t = tenant list  (* immutable after create; read-only thread-sharing is safe *)

let create ~service specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (s : spec) :: rest ->
        if List.exists (fun t -> t.t_name = s.name) acc then
          Error (Printf.sprintf "duplicate tenant %S" s.name)
        else
          go
            ({
               t_name = s.name;
               token = s.token;
               cap = s.max_in_flight;
               svc = service ();
               counter = Admission.counter ();
             }
            :: acc)
            rest
  in
  go [] specs

let find t name = List.find_opt (fun tn -> tn.t_name = name) t
let list t = t

(* Constant-time comparison: a timing oracle on the token prefix would
   let a caller recover another tenant's credential byte by byte. *)
let token_eq a b =
  String.length a = String.length b
  && (let diff = ref 0 in
      String.iteri (fun i ca -> diff := !diff lor (Char.code ca lxor Char.code b.[i])) a;
      !diff = 0)

let authenticate t ~name ~token =
  match find t name with
  | Some tn when token_eq tn.token token -> Some tn
  | _ -> None

let name tn = tn.t_name
let max_in_flight tn = tn.cap
let service tn = tn.svc
let slot tn = tn.counter
