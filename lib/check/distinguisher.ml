type estimate = {
  event : string;
  p_hat : float;
  q_hat : float;
  p_ci : Stats.interval;
  q_ci : Stats.interval;
  eps_lb : float;
  violation : bool;
}

type verdict = {
  claimed : Prim.Dp.params;
  slack : float;
  alpha : float;
  trials : int;
  estimates : estimate list;
  eps_lb : float;
  violation : bool;
}

let count rng ~trials ~events mech =
  let k = Array.length events in
  let counts = Array.make k 0 in
  for _ = 1 to trials do
    let o = mech rng in
    for i = 0 to k - 1 do
      if events.(i) o then counts.(i) <- counts.(i) + 1
    done
  done;
  counts

(* One direction of the DP inequality for one event: does the CP lower
   bound on P beat e^ε(1+slack)·(CP upper bound on Q) + δ?  And what loss
   does it certify? *)
let direction ~eps ~delta ~slack (p : Stats.interval) (q : Stats.interval) =
  let lb =
    if p.Stats.lo -. delta > 0. && q.Stats.hi > 0. then
      log ((p.Stats.lo -. delta) /. q.Stats.hi)
    else neg_infinity
  in
  let violated = p.Stats.lo > (exp eps *. (1. +. slack) *. q.Stats.hi) +. delta in
  (lb, violated)

let verdict ~claimed ?(slack = 0.1) ?(alpha = 0.05) ~events ~left ~right () =
  let n_left, counts_left = left and n_right, counts_right = right in
  let k = List.length events in
  if Array.length counts_left <> k || Array.length counts_right <> k then
    invalid_arg "Distinguisher.verdict: counts/events length mismatch";
  let eps = claimed.Prim.Dp.eps and delta = claimed.Prim.Dp.delta in
  let estimates =
    List.mapi
      (fun i event ->
        let kp = counts_left.(i) and kq = counts_right.(i) in
        let p_ci = Stats.clopper_pearson ~alpha ~k:kp ~n:n_left in
        let q_ci = Stats.clopper_pearson ~alpha ~k:kq ~n:n_right in
        let lb1, v1 = direction ~eps ~delta ~slack p_ci q_ci in
        let lb2, v2 = direction ~eps ~delta ~slack q_ci p_ci in
        {
          event;
          p_hat = float_of_int kp /. float_of_int n_left;
          q_hat = float_of_int kq /. float_of_int n_right;
          p_ci;
          q_ci;
          eps_lb = Float.max lb1 lb2;
          violation = v1 || v2;
        })
      events
  in
  {
    claimed;
    slack;
    alpha;
    trials = min n_left n_right;
    estimates;
    eps_lb =
      List.fold_left (fun acc (e : estimate) -> Float.max acc e.eps_lb) neg_infinity estimates;
    violation = List.exists (fun (e : estimate) -> e.violation) estimates;
  }

let run rng ~claimed ?slack ?alpha ~trials ~events ~left ~right () =
  let names = List.map fst events in
  let preds = Array.of_list (List.map snd events) in
  let counts_left = count (Prim.Rng.derive rng ~stream:0) ~trials ~events:preds left in
  let counts_right = count (Prim.Rng.derive rng ~stream:1) ~trials ~events:preds right in
  verdict ~claimed ?slack ?alpha ~events:names ~left:(trials, counts_left)
    ~right:(trials, counts_right) ()

let thresholds ~lo ~hi ~count =
  if count < 1 then invalid_arg "Distinguisher.thresholds: count must be positive";
  List.init count (fun i ->
      let c =
        if count = 1 then 0.5 *. (lo +. hi)
        else lo +. (float_of_int i *. (hi -. lo) /. float_of_int (count - 1))
      in
      (Printf.sprintf "x>=%g" c, fun x -> x >= c))

let categories ~k =
  if k < 1 then invalid_arg "Distinguisher.categories: k must be positive";
  List.init k (fun i -> (Printf.sprintf "o=%d" i, fun o -> o = i))
  @ [ ("other", fun o -> o < 0 || o >= k) ]

let pp_verdict ppf v =
  Format.fprintf ppf "claimed (%g, %g), slack %g, alpha %g, %d trials/side: %s (eps_lb %s)"
    v.claimed.Prim.Dp.eps v.claimed.Prim.Dp.delta v.slack v.alpha v.trials
    (if v.violation then "VIOLATION" else "no violation")
    (if v.eps_lb = neg_infinity then "-inf" else Printf.sprintf "%.3f" v.eps_lb)
