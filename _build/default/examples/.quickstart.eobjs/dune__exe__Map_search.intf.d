examples/map_search.mli:
