lib/prim/exp_mech.mli: Rng
