(** Sensitivity-1 quality functions over a totally ordered finite solution
    set, memoized.

    A quasi-concave promise problem (Definition 4.2) is a database together
    with a sensitivity-1 quality [Q : F → R] over a totally ordered finite
    [F], promised to be quasi-concave with [max Q ≥ p].  Solutions are
    identified with indices [0 … size−1].  Evaluations are cached because
    RecConcave's scale-quality computation revisits the same indices many
    times; the evaluation counter feeds the complexity assertions in the
    test-suite. *)

type t

val create : size:int -> f:(int -> float) -> t
(** @raise Invalid_argument unless [size >= 1]. *)

val of_array : float array -> t

val size : t -> int

val eval : t -> int -> float
(** Memoized.  @raise Invalid_argument out of range. *)

val evals : t -> int
(** Number of distinct underlying evaluations performed so far. *)

val is_quasi_concave : t -> bool
(** Exhaustive check (for tests): [Q(ℓ) ≥ min(Q(i), Q(j))] for all
    [i ≤ ℓ ≤ j]; verified in O(size) via the prefix/suffix running maxima
    characterization. *)

val argmax : t -> int
(** Exhaustive argmax (non-private; tests and reference baselines only). *)
