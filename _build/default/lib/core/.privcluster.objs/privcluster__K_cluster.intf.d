lib/core/k_cluster.mli: Geometry Prim Profile
