type t = { rows : Vec.t array; input_dim : int; scale : float }

let make rng ~input_dim ~output_dim =
  if input_dim <= 0 || output_dim <= 0 then invalid_arg "Jl.make: dimensions must be positive";
  {
    rows = Array.init output_dim (fun _ -> Prim.Rng.gaussian_vector rng ~dim:input_dim ~sigma:1.0);
    input_dim;
    scale = 1. /. sqrt (float_of_int output_dim);
  }

let input_dim t = t.input_dim
let output_dim t = Array.length t.rows

let apply t v =
  if Vec.dim v <> t.input_dim then invalid_arg "Jl.apply: dimension mismatch";
  Array.map (fun row -> t.scale *. Vec.dot row v) t.rows

let apply_all t vs = Array.map (apply t) vs

let target_dim ~n ~eta ~beta =
  if n <= 0 then invalid_arg "Jl.target_dim: n must be positive";
  if not (eta > 0. && eta < 1.) then invalid_arg "Jl.target_dim: eta in (0, 1)";
  if not (beta > 0. && beta < 1.) then invalid_arg "Jl.target_dim: beta in (0, 1)";
  let nf = float_of_int n in
  int_of_float (Float.ceil (8. /. (eta *. eta) *. log (2. *. nf *. nf /. beta)))

let paper_dim ~n ~beta =
  if n <= 0 then invalid_arg "Jl.paper_dim: n must be positive";
  if not (beta > 0. && beta < 1.) then invalid_arg "Jl.paper_dim: beta in (0, 1)";
  max 1 (int_of_float (Float.ceil (46. *. log (2. *. float_of_int n /. beta))))
