(** The sparse vector technique — algorithm AboveThreshold (Theorem 4.8).

    An [(ε, 0)]-DP interactive mechanism: the curator fixes a threshold [t],
    then receives an adaptive stream of sensitivity-1 queries; each query is
    answered [Below] until the first whose noisy value clears the noisy
    threshold, which is answered [Above], after which the mechanism halts.
    GoodCenter (Algorithm 2, steps 2/5/6) uses it to detect an iteration in
    which some randomly shifted box captures ≳ t projected points.

    Accuracy (Theorem 4.8): over [k] queries, with probability ≥ 1 − β every
    [Above] answer has true value ≥ t − (8/ε)·ln(2k/β) and every [Below]
    answer has true value ≤ t + (8/ε)·ln(2k/β). *)

type t

type answer = Above | Below

val create : Rng.t -> eps:float -> threshold:float -> t
(** Fresh mechanism.  The noisy threshold is drawn once, here. *)

val create_multi : Rng.t -> eps:float -> threshold:float -> firings:int -> t
(** Variant answering up to [firings] Above answers before halting,
    implemented as [firings] sequential AboveThreshold instances at
    [ε/firings] each (a fresh noisy threshold is drawn after every Above) —
    exactly basic composition, total [(ε, 0)]-DP.  Per-instance accuracy is
    {!accuracy_bound} at [ε/firings]. *)

val firings_left : t -> int

val query : t -> float -> answer
(** Feed the (true) value of the next sensitivity-1 query.

    @raise Invalid_argument if the mechanism already answered [Above]. *)

val create_numeric : Rng.t -> eps:float -> threshold:float -> t
(** NumericSparse (Dwork–Roth §3.6): an AboveThreshold instance whose
    firing answer also releases a Laplace estimate of the fired query's
    value.  Budget split: ε/2 to the threshold test (threshold Lap(4/ε),
    comparisons Lap(8/ε)) and ε/2 to the one released value (Lap(2/ε) at
    sensitivity 1) — [(ε, 0)]-DP total by basic composition. *)

val query_numeric : t -> float -> float option
(** Feed the next sensitivity-1 query to a {!create_numeric} mechanism:
    [Some noisy_value] on Above (then the mechanism halts), [None] on Below.
    @raise Invalid_argument on a mechanism not built by {!create_numeric},
    or after it has halted. *)

val halted : t -> bool
(** [true] once [Above] has been returned. *)

val queries_asked : t -> int

val accuracy_bound : eps:float -> k:int -> beta:float -> float
(** The [(8/ε)·ln(2k/β)] slack of Theorem 4.8. *)
