lib/workload/report.mli:
