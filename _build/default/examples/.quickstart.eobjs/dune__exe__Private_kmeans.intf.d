examples/private_kmeans.mli:
