let select rng ~eps ~sensitivity ~qualities =
  if Array.length qualities = 0 then invalid_arg "Exp_mech.select: empty candidate set";
  if not (eps > 0.) then invalid_arg "Exp_mech.select: eps must be positive";
  if not (sensitivity > 0.) then invalid_arg "Exp_mech.select: sensitivity must be positive";
  Obs.Span.with_charged
    ~attrs:(fun () ->
      [ ("candidates", Obs.Span.I (Array.length qualities));
        ("sensitivity", Obs.Span.F sensitivity) ])
    ~eps ~delta:0. "exp_mech"
    (fun () ->
      let scale = eps /. (2. *. sensitivity) in
      let log_weights = Array.map (fun q -> scale *. q) qualities in
      Rng.categorical_log rng ~log_weights)

let probabilities ~eps ~sensitivity ~qualities =
  if Array.length qualities = 0 then invalid_arg "Exp_mech.probabilities: empty candidate set";
  if not (eps > 0.) then invalid_arg "Exp_mech.probabilities: eps must be positive";
  if not (sensitivity > 0.) then
    invalid_arg "Exp_mech.probabilities: sensitivity must be positive";
  let scale = eps /. (2. *. sensitivity) in
  let m = Array.fold_left (fun acc q -> Float.max acc (scale *. q)) neg_infinity qualities in
  let w = Array.map (fun q -> exp ((scale *. q) -. m)) qualities in
  let z = Array.fold_left ( +. ) 0. w in
  Array.map (fun x -> x /. z) w

let select_elt rng ~eps ~sensitivity ~quality candidates =
  let qualities = Array.map quality candidates in
  candidates.(select rng ~eps ~sensitivity ~qualities)

let error_bound ~eps ~sensitivity ~n_candidates ~beta =
  if n_candidates <= 0 then invalid_arg "Exp_mech.error_bound: need candidates";
  if not (beta > 0. && beta <= 1.) then invalid_arg "Exp_mech.error_bound: beta in (0, 1]";
  2. *. sensitivity /. eps *. log (float_of_int n_candidates /. beta)
