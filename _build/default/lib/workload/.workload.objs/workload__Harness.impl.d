lib/workload/harness.ml: Float Format Geometry List Metrics Printf Privcluster Unix
