lib/workload/synth.ml: Array Float Geometry List Prim
