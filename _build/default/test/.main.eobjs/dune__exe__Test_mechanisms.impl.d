test/test_mechanisms.ml: Alcotest Array Float Prim String Testutil
