type kind = Crash | Stall of float | Kill_worker

let kind_name = function Crash -> "crash" | Stall _ -> "stall" | Kill_worker -> "kill"

type rule = { kind : kind; attempts : int }

let rule ?(attempts = 1) kind = { kind; attempts }

type t =
  | None_
  | Explicit of (int, rule) Hashtbl.t
  | Seeded of { seed : int; rate : float; kinds : kind array; attempts : int }

exception Injected of string

let none = None_
let is_none = function None_ -> true | _ -> false

let explicit rules =
  match rules with
  | [] -> None_
  | _ ->
      let tbl = Hashtbl.create (List.length rules) in
      List.iter
        (fun (i, r) ->
          if i < 0 then invalid_arg "Faults.explicit: negative job index";
          if r.attempts <= 0 then invalid_arg "Faults.explicit: attempts must be positive";
          Hashtbl.replace tbl i r)
        rules;
      Explicit tbl

let seeded ?(attempts = 1) ?(kinds = [ Crash; Kill_worker ]) ~seed ~rate () =
  if rate < 0. || rate > 1. then invalid_arg "Faults.seeded: rate must be in [0, 1]";
  if attempts <= 0 then invalid_arg "Faults.seeded: attempts must be positive";
  if kinds = [] then invalid_arg "Faults.seeded: empty kind list";
  if rate = 0. then None_ else Seeded { seed; rate; kinds = Array.of_list kinds; attempts }

let lookup t ~index ~attempt =
  if index < 0 || attempt < 0 then invalid_arg "Faults.lookup: negative index or attempt";
  match t with
  | None_ -> None
  | Explicit tbl -> (
      match Hashtbl.find_opt tbl index with
      | Some r when attempt < r.attempts -> Some r.kind
      | _ -> None)
  | Seeded { seed; rate; kinds; attempts } ->
      if attempt >= attempts then None
      else
        (* One derived stream per job index: whether (and how) job [i] faults
           is a pure function of (seed, i), independent of batch composition,
           domain count or scheduling. *)
        let rng = Prim.Rng.derive (Prim.Rng.create ~seed ()) ~stream:index in
        if Prim.Rng.float rng 1.0 >= rate then None
        else Some kinds.(Prim.Rng.int rng (Array.length kinds))

let arm t ~index ~attempt =
  match lookup t ~index ~attempt with
  | None -> ()
  | Some Crash ->
      raise (Injected (Printf.sprintf "injected crash (job %d, attempt %d)" index attempt))
  | Some (Stall s) -> Unix.sleepf s
  | Some Kill_worker ->
      raise
        (Pool.Worker_crash (Printf.sprintf "injected worker kill (job %d, attempt %d)" index attempt))

(* --- parsing ----------------------------------------------------------- *)

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let parse_int name s =
  match int_of_string_opt s with Some i -> Ok i | None -> fail "%s: not an integer: %S" name s

let parse_float name s =
  match float_of_string_opt s with Some f -> Ok f | None -> fail "%s: not a number: %S" name s

let ( let* ) = Result.bind

(* kind@INDEX[=ARG][xATTEMPTS], e.g. "crash@2", "stall@5=0.25", "kill@7x3". *)
let parse_rule tok =
  match String.index_opt tok '@' with
  | None -> fail "expected kind@index, got %S" tok
  | Some at -> (
      let kind_s = String.sub tok 0 at in
      let rest = String.sub tok (at + 1) (String.length tok - at - 1) in
      let rest, attempts_s =
        match String.index_opt rest 'x' with
        | Some x ->
            (String.sub rest 0 x, Some (String.sub rest (x + 1) (String.length rest - x - 1)))
        | None -> (rest, None)
      in
      let rest, arg_s =
        match String.index_opt rest '=' with
        | Some eq ->
            (String.sub rest 0 eq, Some (String.sub rest (eq + 1) (String.length rest - eq - 1)))
        | None -> (rest, None)
      in
      let* index = parse_int "index" rest in
      let* attempts = match attempts_s with None -> Ok 1 | Some s -> parse_int "attempts" s in
      if index < 0 then fail "index must be non-negative in %S" tok
      else if attempts <= 0 then fail "attempts must be positive in %S" tok
      else
        let* kind =
          match (kind_s, arg_s) with
          | "crash", None -> Ok Crash
          | "kill", None -> Ok Kill_worker
          | "stall", Some s ->
              let* d = parse_float "stall seconds" s in
              if d < 0. then fail "stall seconds must be non-negative in %S" tok else Ok (Stall d)
          | "stall", None -> fail "stall needs a duration: stall@INDEX=SECONDS"
          | ("crash" | "kill"), Some _ -> fail "%s takes no =argument in %S" kind_s tok
          | k, _ -> fail "unknown fault kind %S (expected crash|stall|kill)" k
        in
        Ok (index, { kind; attempts }))

let parse_kinds s =
  let toks = String.split_on_char '+' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "crash" :: rest -> go (Crash :: acc) rest
    | "kill" :: rest -> go (Kill_worker :: acc) rest
    | "stall" :: _ -> fail "seeded schedules support kinds crash and kill only"
    | k :: _ -> fail "unknown fault kind %S (expected crash|kill)" k
  in
  go [] toks

(* seed=S,rate=R[,kinds=crash+kill][,attempts=N] *)
let parse_seeded toks =
  let rec go seed rate kinds attempts = function
    | [] -> (
        match (seed, rate) with
        | Some seed, Some rate ->
            if rate < 0. || rate > 1. then fail "rate must be in [0, 1]"
            else Ok (seeded ~attempts ~kinds ~seed ~rate ())
        | None, _ -> fail "seeded schedule needs seed="
        | _, None -> fail "seeded schedule needs rate=")
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None -> fail "expected key=value, got %S" tok
        | Some eq -> (
            let k = String.sub tok 0 eq in
            let v = String.sub tok (eq + 1) (String.length tok - eq - 1) in
            match k with
            | "seed" ->
                let* s = parse_int "seed" v in
                go (Some s) rate kinds attempts rest
            | "rate" ->
                let* r = parse_float "rate" v in
                go seed (Some r) kinds attempts rest
            | "kinds" ->
                let* ks = parse_kinds v in
                go seed rate ks attempts rest
            | "attempts" ->
                let* a = parse_int "attempts" v in
                if a <= 0 then fail "attempts must be positive" else go seed rate kinds a rest
            | k -> fail "unknown key %S (expected seed|rate|kinds|attempts)" k))
  in
  go None None [ Crash; Kill_worker ] 1 toks

let parse s =
  let toks =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  match toks with
  | [] -> Ok None_
  | [ "none" ] -> Ok None_
  | first :: _ when String.length first >= 5 && String.sub first 0 5 = "seed=" -> parse_seeded toks
  | _ ->
      let rec go acc = function
        | [] -> Ok (explicit (List.rev acc))
        | tok :: rest ->
            let* r = parse_rule tok in
            go (r :: acc) rest
      in
      go [] toks

let to_string = function
  | None_ -> "none"
  | Seeded { seed; rate; kinds; attempts } ->
      Printf.sprintf "seed=%d,rate=%g,kinds=%s,attempts=%d" seed rate
        (String.concat "+" (List.map kind_name (Array.to_list kinds)))
        attempts
  | Explicit tbl ->
      Hashtbl.fold (fun i r acc -> (i, r) :: acc) tbl []
      |> List.sort compare
      |> List.map (fun (i, { kind; attempts }) ->
             let base =
               match kind with
               | Crash -> Printf.sprintf "crash@%d" i
               | Kill_worker -> Printf.sprintf "kill@%d" i
               | Stall s -> Printf.sprintf "stall@%d=%g" i s
             in
             if attempts = 1 then base else Printf.sprintf "%sx%d" base attempts)
      |> String.concat ","

let env_var = "PRIVCLUSTER_FAULTS"

let of_env () =
  match Sys.getenv_opt env_var with
  | None -> None_
  | Some s -> (
      match parse s with
      | Ok t -> t
      | Error e -> invalid_arg (Printf.sprintf "Faults.of_env: %s=%S: %s" env_var s e))
