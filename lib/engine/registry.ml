type dataset = {
  name : string;
  grid : Geometry.Grid.t;
  pointset : Geometry.Pointset.t;
  index : Geometry.Pointset.index;
  accountant : Accountant.t;
  bounds : (int, float * float) Hashtbl.t;
  bounds_mutex : Mutex.t;
  mutable bounds_lookups : int;
  mutable bounds_hits : int;
}

type t = { mutable datasets : dataset list (* reverse registration order *) }

let create () = { datasets = [] }

let find t name = List.find_opt (fun d -> d.name = name) t.datasets
let names t = List.rev_map (fun d -> d.name) t.datasets

let register t ~name ~grid ?mode ~budget ?dense_threshold ?index_domains points =
  if find t name <> None then
    invalid_arg (Printf.sprintf "Registry.register: duplicate dataset %S" name);
  let pointset = Geometry.Pointset.create points in
  let index = Geometry.Pointset.auto_index ?dense_threshold ?domains:index_domains pointset in
  let dataset =
    {
      name;
      grid;
      pointset;
      index;
      accountant = Accountant.create ?mode ~budget ();
      bounds = Hashtbl.create 8;
      bounds_mutex = Mutex.create ();
      bounds_lookups = 0;
      bounds_hits = 0;
    }
  in
  t.datasets <- dataset :: t.datasets;
  dataset

let name d = d.name
let grid d = d.grid
let pointset d = d.pointset
let index d = d.index
let accountant d = d.accountant
let n d = Geometry.Pointset.n d.pointset
let dim d = Geometry.Pointset.dim d.pointset

let r_opt_bounds d ~t =
  Mutex.lock d.bounds_mutex;
  d.bounds_lookups <- d.bounds_lookups + 1;
  match Hashtbl.find_opt d.bounds t with
  | Some b ->
      d.bounds_hits <- d.bounds_hits + 1;
      Mutex.unlock d.bounds_mutex;
      b
  | None ->
      (* Computed under the lock: concurrent first requests for the same [t]
         would otherwise both pay the O(n) scan, and the dense index's
         kth-neighbor lookup is cheap relative to lock hold-time concerns. *)
      let b =
        Fun.protect
          ~finally:(fun () -> Mutex.unlock d.bounds_mutex)
          (fun () ->
            let b = Workload.Metrics.r_opt_bounds_indexed d.index ~t in
            Hashtbl.replace d.bounds t b;
            b)
      in
      b

let bounds_cache_stats d =
  Mutex.lock d.bounds_mutex;
  let s = (d.bounds_lookups, d.bounds_hits) in
  Mutex.unlock d.bounds_mutex;
  s

let to_json d =
  let lookups, hits = bounds_cache_stats d in
  Json.Obj
    [
      ("name", Json.String d.name);
      ("n", Json.Int (n d));
      ("dim", Json.Int (dim d));
      ("axis_size", Json.Int (Geometry.Grid.axis_size d.grid));
      ( "index_backend",
        Json.String (if Geometry.Pointset.index_is_dense d.index then "dense" else "kdtree") );
      ("r_opt_bounds_cache", Json.Obj [ ("lookups", Json.Int lookups); ("hits", Json.Int hits) ]);
      ("accountant", Accountant.to_json d.accountant);
    ]
