test/test_baselines.ml: Alcotest Array Baselines Float Geometry Prim Printf Testutil Workload
