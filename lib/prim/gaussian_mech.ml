let sigma ~eps ~delta ~l2_sensitivity =
  if not (eps > 0.) then invalid_arg "Gaussian_mech.sigma: eps must be positive";
  if not (delta > 0. && delta < 1.) then
    invalid_arg "Gaussian_mech.sigma: delta must be in (0, 1)";
  if not (l2_sensitivity >= 0.) then
    invalid_arg "Gaussian_mech.sigma: sensitivity must be non-negative";
  (* Theorem 2.4's calibration is only proved for ε < 1; for larger budgets
     we keep the ε = 1 noise level, which gives strictly more privacy than
     requested (the caller simply does not benefit from the surplus ε). *)
  let eps = Float.min eps (1. -. 1e-9) in
  l2_sensitivity /. eps *. sqrt (2. *. log (1.25 /. delta))

let scalar rng ~eps ~delta ~l2_sensitivity x =
  Obs.Span.with_charged
    ~attrs:(fun () -> [ ("sensitivity", Obs.Span.F l2_sensitivity) ])
    ~eps ~delta "gaussian"
    (fun () -> x +. Rng.gaussian rng ~sigma:(sigma ~eps ~delta ~l2_sensitivity) ())

(* Uncharged: the caller owns the (ε, δ) that calibrated [sigma] (e.g.
   [Noisy_avg] charges its whole budget on its own span). *)
let vector_with_sigma rng ~sigma v = Array.map (fun x -> x +. Rng.gaussian rng ~sigma ()) v

let vector rng ~eps ~delta ~l2_sensitivity v =
  Obs.Span.with_charged
    ~attrs:(fun () ->
      [ ("sensitivity", Obs.Span.F l2_sensitivity); ("dim", Obs.Span.I (Array.length v)) ])
    ~eps ~delta "gaussian_vector"
    (fun () -> vector_with_sigma rng ~sigma:(sigma ~eps ~delta ~l2_sensitivity) v)

let coordinate_tail_bound ~sigma ~dim ~beta =
  if not (beta > 0. && beta <= 1.) then
    invalid_arg "Gaussian_mech.coordinate_tail_bound: beta in (0, 1]";
  if dim <= 0 then invalid_arg "Gaussian_mech.coordinate_tail_bound: dim must be positive";
  sigma *. sqrt (2. *. log (2. *. float_of_int dim /. beta))
