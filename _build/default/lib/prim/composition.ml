let basic p ~k =
  if k <= 0 then invalid_arg "Composition.basic: k must be positive";
  let kf = float_of_int k in
  Dp.v ~eps:(Dp.eps p *. kf) ~delta:(Float.min (Dp.delta p *. kf) (Float.pred 1.0))

let basic_list = function
  | [] -> invalid_arg "Composition.basic_list: empty"
  | ps ->
      let eps = List.fold_left (fun acc p -> acc +. Dp.eps p) 0. ps in
      let delta = List.fold_left (fun acc p -> acc +. Dp.delta p) 0. ps in
      Dp.v ~eps ~delta:(Float.min delta (Float.pred 1.0))

let advanced_eps ~eps ~k ~delta' =
  let kf = float_of_int k in
  (2. *. kf *. eps *. eps) +. (eps *. sqrt (2. *. kf *. log (1. /. delta')))

let advanced p ~k ~delta' =
  if k <= 0 then invalid_arg "Composition.advanced: k must be positive";
  if not (delta' > 0. && delta' < 1.) then
    invalid_arg "Composition.advanced: delta' must be in (0, 1)";
  let eps' = advanced_eps ~eps:(Dp.eps p) ~k ~delta' in
  let delta = (float_of_int k *. Dp.delta p) +. delta' in
  Dp.v ~eps:eps' ~delta:(Float.min delta (Float.pred 1.0))

let advanced_per_mechanism ~total_eps ~k ~delta' =
  if not (total_eps > 0.) then invalid_arg "Composition.advanced_per_mechanism: eps > 0";
  if k <= 0 then invalid_arg "Composition.advanced_per_mechanism: k must be positive";
  (* advanced_eps is strictly increasing in eps, so bisect. *)
  let target = total_eps in
  let rec bisect lo hi iters =
    if iters = 0 then lo
    else
      let mid = 0.5 *. (lo +. hi) in
      if advanced_eps ~eps:mid ~k ~delta' > target then bisect lo mid (iters - 1)
      else bisect mid hi (iters - 1)
  in
  bisect 0. total_eps 80

type accountant = { mutable entries : (string * Dp.params) list }

let accountant () = { entries = [] }

let charge acc ?(label = "anon") p = acc.entries <- (label, p) :: acc.entries

let spent_basic acc =
  match acc.entries with
  | [] -> invalid_arg "Composition.spent_basic: nothing charged"
  | es -> basic_list (List.map snd es)

let spent_advanced acc ~delta' =
  match acc.entries with
  | [] -> invalid_arg "Composition.spent_advanced: nothing charged"
  | (_, p0) :: _ as es ->
      let homogeneous =
        List.for_all
          (fun (_, p) -> Dp.eps p = Dp.eps p0 && Dp.delta p = Dp.delta p0)
          es
      in
      if not homogeneous then
        invalid_arg "Composition.spent_advanced: heterogeneous charges";
      advanced p0 ~k:(List.length es) ~delta'

let charges acc = List.rev acc.entries
