(** A k-d tree over R^d for ball-counting queries.

    The O(n²)-memory distance index of {!Pointset} is the fastest way to
    evaluate GoodRadius's score when the same point set is probed at many
    radii, but it stops scaling around a few thousand points.  This tree
    answers single ball-count / ball-membership queries in
    O(n^{1−1/d} + out) without any quadratic precomputation, which is what
    the large-n experiment paths and the outlier predicates use.

    The tree is a {e view}: built from flat row-major storage, it keeps a
    reference to the backing store and permutes only an array of row
    offsets — no coordinate is ever copied.  The storage must not be
    mutated while the tree is live (see DESIGN.md, "Memory layout").
    Queries never allocate more than the output. *)

type t

val build : Vec.t array -> t
(** O(n log n) construction (median splits along the widest axis); packs
    the boxed input into fresh flat storage first.
    @raise Invalid_argument on an empty array or mixed dimensions. *)

val build_flat :
  ?domains:int -> storage:float array -> offs:int array -> dim:int -> unit -> t
(** Zero-copy construction over existing flat storage: [offs.(i)] is the
    element offset of point [i]'s row.  [offs] is copied (the build permutes
    it); [storage] is shared.  [domains > 1] parallelizes construction: a
    serial skeleton pass performs the top median splits (each partition is
    confined to the range its ancestors produced), then worker domains
    build the pending subtrees on disjoint index ranges — the resulting
    tree (structure and {!row_order} permutation) is bit-identical to the
    serial build for any [domains].
    @raise Invalid_argument on empty [offs]. *)

val row_order : t -> int array
(** A copy of the tree's row-offset permutation, in left-to-right leaf
    order.  Exposed so tests and bench gates can assert that parallel and
    serial builds produce identical trees. *)

val size : t -> int
val dim : t -> int

(** {1 Incremental maintenance}

    The epoch-versioned registry mutates datasets far more rarely than it
    queries them, so the tree supports cheap structural-sharing updates
    instead of a rebuild per mutation.  Both operations preserve {e query}
    results bit-exactly versus a fresh build over the same points: every
    query this library's pipeline issues is a sum of per-point
    ball-membership indicators (or a bisection over such sums), which is
    independent of the order points are visited in. *)

val with_storage : t -> storage:float array -> t
(** The same tree reading through [storage] instead of its original
    backing store.  The caller guarantees [storage] begins with the old
    store's contents (an append-only arena after growth); offsets and
    therefore all results are unchanged.
    @raise Invalid_argument if [storage] is shorter than the old store. *)

val insert_bulk : t -> offs:int array -> t
(** Insert the rows at [offs] (offsets into the tree's storage) by routing
    each down the existing splits to its leaf and widening bounding boxes
    on the way — no re-splitting, O((n + k)·depth).  The original tree is
    untouched (the result shares its storage, not its index permutation).
    Leaves can grow beyond the build-time capacity; callers that mutate
    heavily should rebuild once a drift threshold is crossed.
    @raise Invalid_argument if an offset falls outside the storage. *)

val remove_bulk : t -> dead:(int -> bool) -> t
(** Drop every row whose offset satisfies [dead].  Bounding boxes are left
    unshrunk (pruning only weakens; counts stay exact).  The original tree
    is untouched.  The result may be empty — counting queries on an empty
    tree return 0. *)

val count_within : t -> center:Vec.t -> radius:float -> int
(** Number of stored points with [dist p center <= radius] (inclusive, like
    {!Pointset.ball_count}). *)

val count_within_row : t -> float array -> off:int -> radius:float -> int
(** Same, with the center given as a row of a flat store (allocation-free;
    the store may be the tree's own backing storage). *)

val iter_within : t -> center:Vec.t -> radius:float -> (Vec.t -> unit) -> unit
(** Visits a fresh copy of each point inside the ball. *)

val iter_within_offs : t -> center:Vec.t -> radius:float -> (int -> unit) -> unit
(** Allocation-free variant: visits the row offset of each point inside
    the ball (offsets index the tree's backing storage). *)

val points_within : t -> center:Vec.t -> radius:float -> Vec.t array

val nearest : t -> Vec.t -> Vec.t * float
(** Nearest stored point (a fresh copy) and its distance.
    @raise Invalid_argument on an empty tree (cannot happen via {!build}). *)

val counts_within_all : t -> Vec.t array -> radius:float -> int array
(** [count_within] for a batch of centers (the per-point counts feeding
    GoodRadius's score on large inputs). *)

val counts_within_rows : t -> float array -> offs:int array -> radius:float -> int array
(** Batch {!count_within_row}: one count per row offset in [offs]. *)

val count_within_row_many :
  t -> float array -> off:int -> radii:float array -> out:int array -> stride:int ->
  col:int -> unit
(** One query, many radii in a single traversal:
    [out.((j * stride) + col) <- count_within_row t cst ~off ~radius:radii.(j)]
    for every [j].  [radii] must be ascending and non-negative.  Counts are
    exact integers, identical to the per-radius calls (same per-point
    membership indicators, summed in a different order); the batched
    traversal shares pruning work across all radii.  This is the kernel
    behind [Pointset.score_l_many] / GoodRadius's candidate sweep. *)
