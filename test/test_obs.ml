(* The observability layer: span collection and tree well-formedness under
   engine fan-out, budget attribution against the accountant ledger (all
   composition modes, fallback commit/release, retry replay), the Chrome
   trace exporter's schema, the JSON parser, and Prometheus exposition.
   Tracing must also be inert: enabling it draws no randomness and a
   disabled collector records nothing. *)

open Testutil

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Tracing state is global; every test runs inside this bracket so a
   failure cannot leak an enabled collector into other suites. *)
let with_tracing f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

(* --- batch fixtures ------------------------------------------------------ *)

let oc ?(eps = 0.4) ?(delta = 1e-7) ?deadline_s ?(fallback = false) id =
  {
    Engine.Job.id;
    kind = Engine.Job.One_cluster { t_fraction = 0.45 };
    eps;
    delta;
    beta = 0.1;
    deadline_s;
    fallback;
  }

let qt ?(eps = 0.1) id =
  {
    Engine.Job.id;
    kind = Engine.Job.Quantile { axis = 0; q = 0.5 };
    eps;
    delta = 0.;
    beta = 0.1;
    deadline_s = None;
    fallback = false;
  }

(* One traced batch on a small planted workload; returns the results, the
   attribution report and the collected spans. *)
let traced_batch ?(domains = 2) ?(retries = 0) ?(faults = Engine.Faults.none) ?mode
    ?(budget_eps = 2.0) ?(n = 400) ?(axis = 128) ?(radius = 0.06) specs =
  let service = Engine.Service.create ~domains ~seed:5 ~retries ~faults () in
  let _, grid, w = small_workload ~n ~axis ~radius () in
  let dataset =
    Engine.Service.register service ~name:"obs-test" ~grid ?mode
      ~budget:(Prim.Dp.v ~eps:budget_eps ~delta:1e-4)
      w.Workload.Synth.points
  in
  let results = Engine.Service.run_batch service ~dataset specs in
  let report = Engine.Service.attribution ~dataset () in
  (results, report, Obs.Span.spans ())

let admitted results =
  List.filter_map
    (fun (r : Engine.Job.result) ->
      match r.Engine.Job.status with
      | Engine.Job.Refused _ -> None
      | _ -> Some r.Engine.Job.spec.Engine.Job.id)
    results

(* --- span-tree well-formedness ------------------------------------------- *)

let end_ns (sp : Obs.Span.span) = Int64.add sp.Obs.Span.start_ns sp.Obs.Span.dur_ns

let check_well_formed spans =
  let ids = Hashtbl.create 64 in
  List.iter
    (fun (sp : Obs.Span.span) ->
      if Hashtbl.mem ids sp.Obs.Span.id then Alcotest.failf "duplicate span id %d" sp.Obs.Span.id;
      Hashtbl.replace ids sp.Obs.Span.id sp)
    spans;
  List.iter
    (fun (sp : Obs.Span.span) ->
      if sp.Obs.Span.dur_ns < 0L then Alcotest.failf "span %s: negative duration" sp.Obs.Span.name;
      match sp.Obs.Span.parent with
      | None -> ()
      | Some pid -> (
          match Hashtbl.find_opt ids pid with
          | None -> Alcotest.failf "span %s: dangling parent id %d" sp.Obs.Span.name pid
          | Some parent ->
              if sp.Obs.Span.start_ns < parent.Obs.Span.start_ns then
                Alcotest.failf "span %s starts before its parent %s" sp.Obs.Span.name
                  parent.Obs.Span.name;
              if end_ns sp > end_ns parent then
                Alcotest.failf "span %s ends after its parent %s" sp.Obs.Span.name
                  parent.Obs.Span.name))
    spans

let batch_root spans =
  match List.filter (fun (sp : Obs.Span.span) -> sp.Obs.Span.cat = "batch") spans with
  | [ b ] -> b
  | l -> Alcotest.failf "expected exactly one batch span, got %d" (List.length l)

let test_tree_under_fan_out () =
  let prop (n_jobs, domains) =
    with_tracing @@ fun () ->
    let specs = List.init n_jobs (fun i -> qt ~eps:0.05 (Printf.sprintf "q%d" i)) in
    let results, report, spans = traced_batch ~domains specs in
    check_well_formed spans;
    let batch = batch_root spans in
    check_true "batch span is a root" (batch.Obs.Span.parent = None);
    check_true "batch span has duration" (batch.Obs.Span.dur_ns > 0L);
    (* Every admitted job produced exactly one execution root stitched to
       the batch span, labelled with its id; refused jobs produced none. *)
    let job_spans =
      List.filter (fun (sp : Obs.Span.span) -> sp.Obs.Span.cat = "job") spans
    in
    List.iter
      (fun (sp : Obs.Span.span) ->
        check_true "job span parented to the batch span"
          (sp.Obs.Span.parent = Some batch.Obs.Span.id))
      job_spans;
    let ids = admitted results in
    check_int "one job span per admitted job" (List.length ids) (List.length job_spans);
    List.iter
      (fun id ->
        check_true ("execution span for " ^ id)
          (List.exists (fun (sp : Obs.Span.span) -> sp.Obs.Span.label = Some id) job_spans))
      ids;
    (* Coordinator phases bracket the execution. *)
    List.iter
      (fun phase ->
        check_true (phase ^ " present")
          (List.exists (fun (sp : Obs.Span.span) -> sp.Obs.Span.name = phase) spans))
      [ "service.admission"; "service.settlement" ];
    check_true "attribution reconciles" (report.Obs.Attribution.ok && report.Obs.Attribution.exact);
    true
  in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:8 ~name:"span tree under pool fan-out"
       QCheck2.Gen.(pair (1 -- 5) (1 -- 4))
       prop)

(* --- budget reconciliation ----------------------------------------------- *)

let find_line (report : Obs.Attribution.report) label =
  match List.find_opt (fun (l : Obs.Attribution.line) -> l.Obs.Attribution.label = label)
          report.Obs.Attribution.lines
  with
  | Some l -> l
  | None -> Alcotest.failf "no attribution line for %S" label

(* zCDP needs headroom: converting even one (0.4, 1e-7) charge back to
   approximate DP at slack 1e-9 lands near ε = 2.7. *)
let reconciliation_for ?budget_eps mode () =
  with_tracing @@ fun () ->
  let specs = [ oc "a"; qt "b"; oc ~eps:0.5 "c"; oc ~eps:50.0 "greedy" ] in
  let _, report, _ = traced_batch ?mode ?budget_eps specs in
  check_true "report ok" report.Obs.Attribution.ok;
  check_true "report exact" report.Obs.Attribution.exact;
  List.iter
    (fun label ->
      let l = find_line report label in
      check_true (label ^ " events match ledger") l.Obs.Attribution.events_ok;
      check_true (label ^ " exact") l.Obs.Attribution.exact)
    [ "a"; "b"; "c" ];
  (* The refused job never reached the ledger or the workers. *)
  check_true "no line for the refused job"
    (not
       (List.exists
          (fun (l : Obs.Attribution.line) -> l.Obs.Attribution.label = "greedy")
          report.Obs.Attribution.lines));
  (* The pipeline's invocation arguments are what lands in the ledger. *)
  let a = find_line report "a" in
  check_float ~tol:1e-12 "ledger eps is the job price" 0.4 a.Obs.Attribution.ledger.Obs.Span.eps;
  check_float ~tol:1e-18 "ledger delta is the job price" 1e-7
    a.Obs.Attribution.ledger.Obs.Span.delta

let test_reconcile_basic = reconciliation_for None
let test_reconcile_advanced = reconciliation_for (Some (Engine.Accountant.Advanced { slack = 1e-9 }))
let test_reconcile_zcdp =
  reconciliation_for ~budget_eps:8.0 (Some (Engine.Accountant.Zcdp { slack = 1e-9 }))

let test_reconcile_fallback_commit () =
  with_tracing @@ fun () ->
  (* deadline=0 forces degradation: the reserved GoodRadius share is
     committed under the <id>:fallback label and must reconcile exactly
     against the fallback's execution span. *)
  let specs = [ oc "main"; oc ~deadline_s:0. ~fallback:true "slow" ] in
  let results, report, spans = traced_batch ~domains:2 specs in
  let degraded =
    List.exists
      (fun (r : Engine.Job.result) ->
        r.Engine.Job.spec.Engine.Job.id = "slow"
        && match r.Engine.Job.status with Engine.Job.Degraded _ -> true | _ -> false)
      results
  in
  check_true "slow degraded" degraded;
  check_true "report ok" report.Obs.Attribution.ok;
  check_true "report exact" report.Obs.Attribution.exact;
  let fb = find_line report "slow:fallback" in
  check_true "fallback committed and reconciled"
    (fb.Obs.Attribution.events_ok && fb.Obs.Attribution.exact);
  check_float ~tol:1e-12 "fallback price is the GoodRadius share" 0.2
    fb.Obs.Attribution.ledger.Obs.Span.eps;
  (* A commit budget event exists; the full job kept its admission charge
     even though it never produced a result. *)
  check_true "commit event present"
    (List.exists
       (fun (sp : Obs.Span.span) ->
         sp.Obs.Span.cat = "budget" && sp.Obs.Span.name = "commit"
         && sp.Obs.Span.label = Some "slow:fallback")
       spans);
  let slow = find_line report "slow" in
  check_float ~tol:1e-12 "blown job keeps its charge" 0.4 slow.Obs.Attribution.ledger.Obs.Span.eps

let test_reconcile_fallback_release () =
  with_tracing @@ fun () ->
  (* A fallback job that succeeds releases its reservation: a release
     event, no :fallback ledger line, and the report stays exact.  The
     solver needs the bigger planted workload to actually succeed at this
     ε (on the 400-point one it degrades and would commit instead). *)
  let specs = [ oc ~eps:1.0 ~fallback:true "fine" ] in
  let results, report, spans = traced_batch ~domains:1 ~n:1500 ~axis:256 ~radius:0.05 specs in
  check_true "fine completed"
    (List.exists
       (fun (r : Engine.Job.result) ->
         match r.Engine.Job.status with Engine.Job.Completed _ -> true | _ -> false)
       results);
  check_true "report ok and exact" (report.Obs.Attribution.ok && report.Obs.Attribution.exact);
  check_true "no fallback line"
    (not
       (List.exists
          (fun (l : Obs.Attribution.line) -> l.Obs.Attribution.label = "fine:fallback")
          report.Obs.Attribution.lines));
  check_true "release event present"
    (List.exists
       (fun (sp : Obs.Span.span) -> sp.Obs.Span.cat = "budget" && sp.Obs.Span.name = "release")
       spans)

let test_reconcile_retry_replay () =
  with_tracing @@ fun () ->
  (* A crash-before-output fault on job 0: the retry replays the same RNG
     stream, so both attempts' spans exist but only the clean one counts,
     and the replay attributes exactly the ledger charge. *)
  let faults = Engine.Faults.explicit [ (0, Engine.Faults.rule Engine.Faults.Crash) ] in
  let specs = [ qt "crashy"; qt "calm" ] in
  let results, report, spans = traced_batch ~domains:2 ~retries:2 ~faults specs in
  check_true "crashy recovered"
    (List.exists
       (fun (r : Engine.Job.result) ->
         r.Engine.Job.spec.Engine.Job.id = "crashy"
         && (match r.Engine.Job.status with Engine.Job.Completed _ -> true | _ -> false)
         && r.Engine.Job.attempts > 1)
       results);
  check_true "a retry event was recorded"
    (List.exists
       (fun (sp : Obs.Span.span) -> sp.Obs.Span.cat = "pool" && sp.Obs.Span.name = "pool.retry")
       spans);
  let attempts =
    List.filter
      (fun (sp : Obs.Span.span) ->
        sp.Obs.Span.cat = "job" && sp.Obs.Span.label = Some "crashy")
      spans
  in
  check_true "both attempts left spans" (List.length attempts >= 2);
  check_true "report ok" report.Obs.Attribution.ok;
  check_true "report exact" report.Obs.Attribution.exact;
  let l = find_line report "crashy" in
  check_true "retry attempts consistent" l.Obs.Attribution.retry_consistent

let test_reconcile_detects_mismatch () =
  (* Attribution is a checker, not a formality: feed it a cooked ledger
     and it must fail (events mismatch), and an execution charge above
     the ledger must flag overspend. *)
  with_tracing @@ fun () ->
  Obs.Span.with_span ~cat:"job" "one_cluster" (fun () ->
      Obs.Span.set_label "j1";
      Obs.Span.with_charged ~eps:0.4 ~delta:0. "laplace" (fun () -> ()));
  Obs.Span.event ~cat:"budget" ~label:"j1"
    ~charge:(Obs.Span.charge ~eps:0.4 ~delta:0. ())
    "charge";
  let spans = Obs.Span.spans () in
  let good = Obs.Attribution.reconcile ~ledger:[ ("j1", Obs.Span.charge ~eps:0.4 ~delta:0. ()) ] spans in
  check_true "consistent view passes" (good.Obs.Attribution.ok && good.Obs.Attribution.exact);
  let cooked =
    Obs.Attribution.reconcile ~ledger:[ ("j1", Obs.Span.charge ~eps:0.3 ~delta:0. ()) ] spans
  in
  check_true "cooked ledger fails" (not cooked.Obs.Attribution.ok);
  let l = find_line cooked "j1" in
  check_true "events mismatch flagged" (not l.Obs.Attribution.events_ok);
  check_true "overspend flagged" l.Obs.Attribution.overspend

(* --- tracing is inert ----------------------------------------------------- *)

let details results = List.map Engine.Job.detail results

let test_tracing_draws_no_randomness () =
  let specs = [ oc "a"; qt "b"; oc ~eps:0.5 ~fallback:true "c" ] in
  Obs.Span.reset ();
  Obs.Span.set_enabled false;
  let plain, _, _ = traced_batch ~domains:2 specs in
  let traced, _, spans = with_tracing (fun () -> traced_batch ~domains:2 specs) in
  check_true "tracing collected spans" (List.length spans > 0);
  List.iter2 (fun a b -> Alcotest.(check string) "output bit-identical under tracing" a b)
    (details plain) (details traced)

let test_disabled_collector_records_nothing () =
  Obs.Span.reset ();
  check_true "disabled" (not (Obs.Span.enabled ()));
  let v =
    Obs.Span.with_span "outer" (fun () ->
        Obs.Span.event "instant";
        Obs.Span.set_attr "k" (Obs.Span.I 1);
        Obs.Span.with_charged ~eps:1.0 ~delta:0. "inner" (fun () -> 17))
  in
  check_int "value passes through" 17 v;
  check_int "nothing collected" 0 (Obs.Span.count ());
  check_true "no current span" (Obs.Span.current () = None)

let test_attributed_convention () =
  with_tracing @@ fun () ->
  (* A stage's own charge wins over its children's sum (the budgeted-share
     convention); an uncharged stage sums its children. *)
  Obs.Span.with_charged ~cat:"stage" ~eps:1.0 ~delta:0. "stage" (fun () ->
      Obs.Span.with_charged ~eps:0.3 ~delta:0. "m1" (fun () -> ());
      Obs.Span.with_charged ~eps:0.3 ~delta:0. "m2" (fun () -> ()));
  Obs.Span.with_span ~cat:"stage" "uncharged" (fun () ->
      Obs.Span.with_charged ~eps:0.25 ~delta:1e-8 "m3" (fun () -> ()));
  let spans = Obs.Span.spans () in
  let find name =
    List.find (fun (sp : Obs.Span.span) -> sp.Obs.Span.name = name) spans
  in
  let c1 = Obs.Span.attributed spans (find "stage") in
  check_float ~tol:1e-12 "own charge wins" 1.0 c1.Obs.Span.eps;
  let c2 = Obs.Span.attributed spans (find "uncharged") in
  check_float ~tol:1e-12 "children sum" 0.25 c2.Obs.Span.eps;
  check_float ~tol:1e-18 "children delta sums" 1e-8 c2.Obs.Span.delta

(* --- Chrome trace export -------------------------------------------------- *)

let test_trace_schema () =
  let _, _, spans =
    with_tracing (fun () -> traced_batch ~domains:2 [ oc "a"; qt "b" ])
  in
  let doc = Obs.Trace.to_json spans in
  (* The serialized document parses back and validates. *)
  (match Obs.Json.parse (Obs.Trace.to_string spans) with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok parsed -> (
      match Obs.Trace.validate parsed with
      | Error e -> Alcotest.failf "trace does not validate: %s" e
      | Ok () -> ()));
  (* Golden shape: every complete event carries the Chrome-required keys
     and our args payload. *)
  let events =
    match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  check_true "one event per span plus thread metadata"
    (List.length events >= List.length spans);
  let an_x =
    List.find_opt
      (fun e ->
        match Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str with
        | Some "X" -> true
        | _ -> false)
      events
  in
  (match an_x with
  | None -> Alcotest.fail "no complete (ph=X) event in the trace"
  | Some e ->
      List.iter
        (fun key ->
          check_true ("complete event has " ^ key) (Obs.Json.member key e <> None))
        [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ];
      check_true "args carry the span id"
        (Option.bind (Obs.Json.member "args" e) (Obs.Json.member "span_id") <> None));
  (* Thread-name metadata is present so Perfetto labels the lanes. *)
  check_true "thread_name metadata emitted"
    (List.exists
       (fun e ->
         match Option.bind (Obs.Json.member "name" e) Obs.Json.to_str with
         | Some "thread_name" -> true
         | _ -> false)
       events)

let test_trace_validate_rejects_malformed () =
  let reject doc what =
    match Obs.Trace.validate doc with
    | Ok () -> Alcotest.failf "validate accepted %s" what
    | Error _ -> ()
  in
  reject (Obs.Json.Obj []) "a document without traceEvents";
  reject
    (Obs.Json.Obj [ ("traceEvents", Obs.Json.List [ Obs.Json.Obj [ ("cat", Obs.Json.String "x") ] ]) ])
    "an event without a name";
  reject
    (Obs.Json.Obj
       [
         ( "traceEvents",
           Obs.Json.List
             [
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String "e");
                   ("cat", Obs.Json.String "c");
                   ("ph", Obs.Json.String "Q");
                   ("ts", Obs.Json.Float 0.);
                   ("pid", Obs.Json.Int 1);
                   ("tid", Obs.Json.Int 0);
                 ];
             ] );
       ])
    "an unknown phase"

(* --- JSON parser ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a \"quoted\" line\nwith\ttabs and \\ slashes");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5);
        ("b", Obs.Json.Bool true);
        ("nothing", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.25; Obs.Json.String "x" ]);
        ("nested", Obs.Json.Obj [ ("empty_l", Obs.Json.List []); ("empty_o", Obs.Json.Obj []) ]);
      ]
  in
  (match Obs.Json.parse (Obs.Json.to_string doc) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok parsed -> check_true "roundtrip preserves the document" (parsed = doc));
  (* Escapes decode, including a surrogate pair. *)
  (match Obs.Json.parse {|"café 😀"|} with
  | Ok (Obs.Json.String s) ->
      check_true "unicode escapes decode to UTF-8" (s = "caf\xc3\xa9 \xf0\x9f\x98\x80")
  | _ -> Alcotest.fail "unicode string did not parse");
  (* Malformed inputs are rejected, not mangled. *)
  List.iter
    (fun bad ->
      match Obs.Json.parse bad with
      | Ok _ -> Alcotest.failf "parse accepted %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "01"; "1 trailing"; "\"unterminated"; "nul"; "{\"a\" 1}"; "" ]

(* --- Prometheus exposition ------------------------------------------------ *)

let test_prom_render () =
  let open Obs.Prom in
  let text =
    render
      [
        Counter
          {
            name = "jobs_total";
            help = "Finished \"jobs\".";
            samples = [ ([ ("kind", "one_cluster") ], 3.) ];
          };
        Histogram
          {
            name = "lat_ms";
            help = "Latency.";
            samples =
              [
                ( [],
                  { bounds = [| 1.; 5. |]; counts = [| 2; 1 |]; sum = 9.5; count = 4 } );
              ];
          };
      ]
  in
  List.iter
    (fun needle -> check_true ("render contains " ^ needle) (contains_sub text needle))
    [
      "# HELP jobs_total";
      "# TYPE jobs_total counter";
      "jobs_total{kind=\"one_cluster\"} 3";
      "# TYPE lat_ms histogram";
      "lat_ms_bucket{le=\"1\"} 2";
      (* Cumulative: 2 under 1ms + 1 more under 5ms. *)
      "lat_ms_bucket{le=\"5\"} 3";
      (* +Inf equals the total observation count (one overflow sample). *)
      "lat_ms_bucket{le=\"+Inf\"} 4";
      "lat_ms_sum 9.5";
      "lat_ms_count 4";
    ]

let test_prom_of_spans_and_exposition () =
  let _, _, spans =
    with_tracing (fun () -> traced_batch ~domains:1 [ oc "a"; qt "b" ])
  in
  let text = Obs.Prom.render (Obs.Prom.of_spans spans) in
  List.iter
    (fun needle -> check_true ("of_spans contains " ^ needle) (contains_sub text needle))
    [
      "privcluster_spans_total{name=\"laplace\",cat=\"mech\"}";
      "privcluster_span_epsilon_total";
    ];
  (* A saved report round-trips through the post-hoc exposition path.
     The bigger workload makes the one_cluster job genuinely succeed so
     the status="ok" sample is meaningful. *)
  let service = Engine.Service.create ~domains:1 ~seed:6 ~faults:Engine.Faults.none () in
  let _, grid, w = small_workload ~n:1500 ~axis:256 ~radius:0.05 () in
  let dataset =
    Engine.Service.register service ~name:"expo" ~grid
      ~budget:(Prim.Dp.v ~eps:2.0 ~delta:1e-4)
      w.Workload.Synth.points
  in
  let results = Engine.Service.run_batch service ~dataset [ oc ~eps:1.0 "a"; qt "b" ] in
  let report = Engine.Service.report_json service ~dataset results in
  match Obs.Json.parse (Engine.Json.to_string report) with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok doc -> (
      match Engine.Exposition.of_report_json doc with
      | Error e -> Alcotest.failf "of_report_json: %s" e
      | Ok families ->
          let text = Obs.Prom.render families in
          List.iter
            (fun needle ->
              check_true ("post-hoc exposition contains " ^ needle) (contains_sub text needle))
            [
              "privcluster_jobs_total{kind=\"one_cluster\",status=\"ok\"} 1";
              "privcluster_jobs_total{kind=\"quantile\",status=\"ok\"} 1";
              "privcluster_job_latency_ms_bucket";
              "privcluster_budget_epsilon{dataset=\"expo\",quantity=\"budget\"} 2";
              "privcluster_budget_refusals_total{dataset=\"expo\"} 0";
            ])

let suite =
  [
    case "span tree well-formed under pool fan-out (qcheck)" test_tree_under_fan_out;
    case "reconciliation: basic ledger exact" test_reconcile_basic;
    case "reconciliation: advanced ledger exact" test_reconcile_advanced;
    case "reconciliation: zcdp ledger exact" test_reconcile_zcdp;
    case "reconciliation: fallback commit" test_reconcile_fallback_commit;
    case "reconciliation: fallback release" test_reconcile_fallback_release;
    case "reconciliation: retry replays reconcile" test_reconcile_retry_replay;
    case "reconciliation: cooked ledger fails loudly" test_reconcile_detects_mismatch;
    case "tracing draws no randomness" test_tracing_draws_no_randomness;
    case "disabled collector records nothing" test_disabled_collector_records_nothing;
    case "attributed: own charge wins, else children sum" test_attributed_convention;
    case "chrome trace schema" test_trace_schema;
    case "trace validation rejects malformed docs" test_trace_validate_rejects_malformed;
    case "json parser roundtrip and rejection" test_json_roundtrip;
    case "prometheus text format" test_prom_render;
    case "prometheus span families and post-hoc exposition" test_prom_of_spans_and_exposition;
  ]
