(** Table 1, row 3 — query release for threshold functions, d = 1 only.

    The paper's row 3 cites the Bun et al. [4] release mechanism with error
    [2^{(1+o(1))·log*|X|}/ε]; as documented in DESIGN.md (substitution 3) we
    implement the standard practical instantiation — the binary-tree
    (hierarchical) mechanism — whose error is [O(log^{1.5}|X|)/ε] per
    threshold query.  All of the row's qualitative behaviour is preserved:
    exact radius ([w = 1] up to grid resolution), polylogarithmic Δ, and no
    extension beyond d = 1.

    The released tree is a {e sanitization}: every interval query afterwards
    is post-processing, so the smallest-interval search pays no further
    privacy. *)

type tree
(** A released hierarchy of noisy dyadic counts over the grid [X]. *)

val release : Prim.Rng.t -> grid:Geometry.Grid.t -> eps:float -> float array -> tree
(** [(ε, 0)]-DP: each point lands in one node per level, so the per-node
    Laplace scale is [levels/ε].  @raise Invalid_argument unless the grid is
    1-D. *)

val levels : tree -> int

val range_count : tree -> lo:float -> hi:float -> float
(** Noisy number of released points in [\[lo, hi\]] — O(log |X|) node
    lookups (post-processing). *)

val query_error_bound : grid:Geometry.Grid.t -> eps:float -> beta:float -> float
(** With probability ≥ 1 − β, every range count is within this additive
    error: [(levels/ε)·√(4·levels·ln(2|X|²/β))] — the sub-Gaussian
    concentration of the ≤ 2·levels Laplace summands a range touches,
    union-bounded over all ranges (the usual [O(log^{1.5}|X|/ε)] rate). *)

type result = { center : Geometry.Vec.t; radius : float; estimated_count : float }

val smallest_interval : tree -> t:int -> slack:float -> result
(** Smallest grid interval whose released count reaches [t − slack], as a
    (center, radius) answer (two-pointer scan over noisy prefix counts;
    post-processing). *)

val run :
  Prim.Rng.t -> grid:Geometry.Grid.t -> eps:float -> beta:float -> t:int -> float array -> result
(** Release then search, with [slack = query_error_bound]. *)
