(** Blocking client for the privclusterd {!Wire} protocol.

    One connection per client; requests are sent synchronously and the
    reply matched by id.  Errors split into transport failures
    ([`Transport] — the socket died or the reply was unparseable) and
    protocol errors ([`Server] — a typed {!Wire.error} from the daemon,
    e.g. [Rejected Queue_full], which provably charged nothing). *)

type t

type fail = [ `Transport of string | `Server of Wire.error ]

val fail_message : fail -> string

val connect :
  Daemon.listen -> tenant:string -> token:string -> (t, fail) result
(** Connect and complete the [hello] exchange. *)

val close : t -> unit

val request : t -> Wire.request -> (Engine.Json.t, fail) result
(** Send one request, wait for its reply. *)

(** Convenience wrappers over {!request}: *)

val register :
  t ->
  dataset:string ->
  ?n:int ->
  ?dim:int ->
  ?axis:int ->
  ?frac:float ->
  ?radius:float ->
  ?seed:int ->
  budget:Prim.Dp.params ->
  ?mode:Engine.Accountant.mode ->
  unit ->
  (Engine.Json.t, fail) result
(** Defaults mirror the CLI batch command: [n = 3000], [dim = 2],
    [axis = 256], [frac = 0.5], [radius = 0.05], [seed = 1],
    [mode = Basic]. *)

val run : t -> dataset:string -> ?seed:int -> jobs:string -> unit -> (Engine.Json.t, fail) result

val append :
  t ->
  dataset:string ->
  n:int ->
  seed:int ->
  ?frac:float ->
  ?radius:float ->
  unit ->
  (Engine.Json.t, fail) result
(** Append [n] synthetic planted-ball points ([frac = 0.5],
    [radius = 0.05] by default), advancing the dataset's epoch. *)

val retire : t -> dataset:string -> from_:int -> count:int -> (Engine.Json.t, fail) result
(** Retire rows [[from_, from_ + count)], advancing the epoch. *)

val epoch : t -> dataset:string -> (Engine.Json.t, fail) result
(** Current epoch, size, index backend, and cache statistics. *)

val standing :
  t ->
  dataset:string ->
  id:string ->
  t_fraction:float ->
  eps:float ->
  delta:float ->
  periods:int ->
  ?seed:int ->
  unit ->
  (Engine.Json.t, fail) result
(** Register a standing 1-cluster query: [eps]/[delta] is the {e total}
    budget, reserved up front as [periods] equal slices. *)

val settle :
  t ->
  dataset:string ->
  action:Wire.settle_action ->
  ?label:string ->
  unit ->
  (Wire.settle_reply, fail) result
(** Commit or release reservations orphaned by a crash; [label] narrows
    the settlement to one reservation label. *)

val ledger : t -> dataset:string -> (Engine.Json.t, fail) result
val datasets : t -> (Engine.Json.t, fail) result

val metrics : t -> (string, fail) result
(** The Prometheus text body itself. *)

val health : t -> (Obs.Slo.status * Obs.Slo.verdict list * Engine.Json.t, fail) result
(** Overall status (the worst across rules), the per-rule verdicts, and
    the raw reply (carries [draining]). *)

val stats : t -> (Engine.Json.t, fail) result
(** The full serving-telemetry dump ({!Serving.stats_json}). *)

val ping : t -> (Engine.Json.t, fail) result
