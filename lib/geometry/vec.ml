type t = float array

let dim = Array.length
let zero d = Array.make d 0.
let copy = Array.copy
let of_list = Array.of_list

let check_same_dim a b name =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": dimension mismatch")

let add a b =
  check_same_dim a b "Vec.add";
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_same_dim a b "Vec.sub";
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale c a = Array.map (fun x -> c *. x) a

let axpy a x y =
  check_same_dim x y "Vec.axpy";
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot a b =
  check_same_dim a b "Vec.dot";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2_sq a = dot a a
let norm2 a = sqrt (norm2_sq a)
let norm1 a = Array.fold_left (fun acc x -> acc +. Float.abs x) 0. a
let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a

let dist_sq a b =
  check_same_dim a b "Vec.dist_sq";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist a b = sqrt (dist_sq a b)

let mean vs =
  let n = Array.length vs in
  if n = 0 then invalid_arg "Vec.mean: empty";
  let acc = Array.make (Array.length vs.(0)) 0. in
  Array.iter (fun v -> Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) v) vs;
  Array.map (fun s -> s /. float_of_int n) acc

let normalize a =
  let n = norm2 a in
  if n = 0. then invalid_arg "Vec.normalize: zero vector";
  scale (1. /. n) a

let equal ?(tol = 1e-12) a b =
  Array.length a = Array.length b
  &&
  let rec go i = i = Array.length a || (Float.abs (a.(i) -. b.(i)) <= tol && go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Flat row views.  A "row" is the slice [st.(off) .. st.(off+dim-1)] of a
   row-major backing store; none of these allocate (except [of_row]), and
   all accumulate in the same index order as the boxed operations above, so
   boxed and flat paths agree bit-for-bit. *)

let get st ~off i = st.(off + i)
let set st ~off i x = st.(off + i) <- x
let of_row st ~off ~dim = Array.sub st off dim
let set_row st ~off v = Array.blit v 0 st off (Array.length v)

let dist_sq_rows a oa b ob ~dim =
  let acc = ref 0. in
  for i = 0 to dim - 1 do
    let d = a.(oa + i) -. b.(ob + i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist_rows a oa b ob ~dim = sqrt (dist_sq_rows a oa b ob ~dim)

let dist_sq_to_row st ~off ~dim v =
  if Array.length v <> dim then invalid_arg "Vec.dist_sq_to_row: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to dim - 1 do
    let d = st.(off + i) -. v.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist_to_row st ~off ~dim v = sqrt (dist_sq_to_row st ~off ~dim v)

let dot_row st ~off ~dim v =
  if Array.length v <> dim then invalid_arg "Vec.dot_row: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to dim - 1 do
    acc := !acc +. (st.(off + i) *. v.(i))
  done;
  !acc

let dot_rows a oa b ob ~dim =
  let acc = ref 0. in
  for i = 0 to dim - 1 do
    acc := !acc +. (a.(oa + i) *. b.(ob + i))
  done;
  !acc

let axpy_row a st ~off ~dim y =
  if Array.length y <> dim then invalid_arg "Vec.axpy_row: dimension mismatch";
  for i = 0 to dim - 1 do
    y.(i) <- (a *. st.(off + i)) +. y.(i)
  done

let add_row st ~off ~dim acc =
  if Array.length acc <> dim then invalid_arg "Vec.add_row: dimension mismatch";
  for i = 0 to dim - 1 do
    acc.(i) <- acc.(i) +. st.(off + i)
  done

let pp ppf a =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Format.pp_print_float)
    (Array.to_list a)
