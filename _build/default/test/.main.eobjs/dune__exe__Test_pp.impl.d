test/test_pp.ml: Alcotest Format Geometry List Privcluster String Testutil Workload
