(* Laplace / Gaussian mechanisms, exponential mechanism, report-noisy-max,
   and the Dp parameter arithmetic. *)

open Testutil

(* --- Dp --- *)

let test_dp_validation () =
  Alcotest.check_raises "eps 0 rejected" (Invalid_argument "Dp.v: eps must be positive")
    (fun () -> ignore (Prim.Dp.v ~eps:0. ~delta:0.1));
  Alcotest.check_raises "delta 1 rejected" (Invalid_argument "Dp.v: delta must be in [0, 1)")
    (fun () -> ignore (Prim.Dp.v ~eps:1. ~delta:1.));
  let p = Prim.Dp.v ~eps:2. ~delta:1e-6 in
  check_float "eps" 2. (Prim.Dp.eps p);
  check_float "delta" 1e-6 (Prim.Dp.delta p);
  check_true "pure" (Prim.Dp.is_pure (Prim.Dp.pure ~eps:1.));
  check_true "not pure" (not (Prim.Dp.is_pure p))

let test_dp_split_scale () =
  let p = Prim.Dp.v ~eps:2. ~delta:1e-6 in
  let s = Prim.Dp.split p 4 in
  check_float "split eps" 0.5 (Prim.Dp.eps s);
  check_float "split delta" 2.5e-7 (Prim.Dp.delta s);
  let d = Prim.Dp.scale p 3. in
  check_float "scale eps" 6. (Prim.Dp.eps d);
  check_true "to_string mentions eps" (String.length (Prim.Dp.to_string p) > 0)

(* --- Laplace mechanism --- *)

let test_laplace_count_unbiased () =
  let r = rng () in
  let samples = Array.init 20_000 (fun _ -> Prim.Laplace.count r ~eps:1.0 42) in
  let mean, var = stats samples in
  check_float ~tol:0.1 "count unbiased" 42. mean;
  check_float ~tol:0.3 "count variance = 2/eps^2" 2.0 var

let test_laplace_scale_with_sensitivity () =
  let r = rng () in
  let samples =
    Array.init 20_000 (fun _ -> Prim.Laplace.scalar r ~eps:0.5 ~sensitivity:3.0 0.)
  in
  let _, var = stats samples in
  (* scale = 3/0.5 = 6; var = 2*36 = 72. *)
  check_float ~tol:4.0 "variance scales" 72.0 var

let test_laplace_vector () =
  let r = rng () in
  let v = Prim.Laplace.vector r ~eps:1.0 ~l1_sensitivity:1.0 [| 1.; 2.; 3. |] in
  check_int "dimension preserved" 3 (Array.length v);
  check_true "noise applied" (v.(0) <> 1. || v.(1) <> 2. || v.(2) <> 3.)

let test_laplace_tail_bound () =
  let r = rng () in
  let eps = 1.0 and beta = 0.05 in
  let bound = Prim.Laplace.tail_bound ~eps ~sensitivity:1.0 ~beta in
  check_float "tail formula" (log (1. /. beta)) bound;
  let exceed = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Float.abs (Prim.Laplace.noise r ~eps ~sensitivity:1.0) > bound then incr exceed
  done;
  (* P(|Lap(1)| > ln(1/beta)) = beta. *)
  check_float ~tol:0.01 "tail rate" beta (float_of_int !exceed /. float_of_int n)

let test_laplace_validation () =
  let r = rng () in
  Alcotest.check_raises "eps>0" (Invalid_argument "Laplace.noise: eps must be positive")
    (fun () -> ignore (Prim.Laplace.noise r ~eps:0. ~sensitivity:1.))

(* --- Gaussian mechanism --- *)

let test_gaussian_sigma_formula () =
  let sigma = Prim.Gaussian_mech.sigma ~eps:0.5 ~delta:1e-5 ~l2_sensitivity:2.0 in
  check_float ~tol:1e-9 "sigma formula" (2.0 /. 0.5 *. sqrt (2. *. log (1.25 /. 1e-5))) sigma

let test_gaussian_vector_noise_level () =
  let r = rng () in
  let dim = 20_000 in
  let v = Prim.Gaussian_mech.vector r ~eps:0.5 ~delta:1e-5 ~l2_sensitivity:1.0 (Array.make dim 0.) in
  let _, var = stats v in
  let sigma = Prim.Gaussian_mech.sigma ~eps:0.5 ~delta:1e-5 ~l2_sensitivity:1.0 in
  check_float ~tol:(0.05 *. sigma *. sigma) "empirical variance" (sigma *. sigma) var

let test_gaussian_scalar () =
  let r = rng () in
  let samples =
    Array.init 10_000 (fun _ ->
        Prim.Gaussian_mech.scalar r ~eps:0.5 ~delta:1e-5 ~l2_sensitivity:1.0 7.0)
  in
  let mean, _ = stats samples in
  check_float ~tol:0.5 "scalar unbiased" 7.0 mean

let test_gaussian_coordinate_tail () =
  let r = rng () in
  let sigma = 1.0 and dim = 50 in
  let bound = Prim.Gaussian_mech.coordinate_tail_bound ~sigma ~dim ~beta:0.1 in
  let violations = ref 0 in
  for _ = 1 to 200 do
    let v = Prim.Gaussian_mech.vector_with_sigma r ~sigma (Array.make dim 0.) in
    if Array.exists (fun x -> Float.abs x > bound) v then incr violations
  done;
  check_true "max-coordinate bound holds at rate >= 1-beta" (!violations <= 40)

let test_gaussian_validation () =
  Alcotest.check_raises "eps>0 required"
    (Invalid_argument "Gaussian_mech.sigma: eps must be positive") (fun () ->
      ignore (Prim.Gaussian_mech.sigma ~eps:0. ~delta:1e-5 ~l2_sensitivity:1.0));
  (* eps >= 1 is clamped: same sigma as eps just below 1. *)
  Testutil.check_float ~tol:1e-6 "clamp at 1"
    (Prim.Gaussian_mech.sigma ~eps:0.999999999 ~delta:1e-5 ~l2_sensitivity:1.0)
    (Prim.Gaussian_mech.sigma ~eps:5.0 ~delta:1e-5 ~l2_sensitivity:1.0)

(* --- Exponential mechanism --- *)

let test_exp_mech_prefers_best () =
  let r = rng () in
  let qualities = [| 0.; 0.; 10.; 0. |] in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Prim.Exp_mech.select r ~eps:2.0 ~sensitivity:1.0 ~qualities = 2 then incr hits
  done;
  (* Gap 10 at eps 2: P(best) >= 1 - 3·e^{-10} ~ 1. *)
  check_true "best candidate dominates" (!hits > 980)

let test_exp_mech_distribution () =
  let r = rng () in
  (* Two candidates with gap g: odds = exp(eps·g/2). *)
  let qualities = [| 0.; 1. |] in
  let eps = 2.0 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prim.Exp_mech.select r ~eps ~sensitivity:1.0 ~qualities = 1 then incr hits
  done;
  let expected = exp 1. /. (1. +. exp 1.) in
  check_float ~tol:0.01 "sampling distribution" expected (float_of_int !hits /. float_of_int n)

let test_exp_mech_huge_scores_no_overflow () =
  let r = rng () in
  let qualities = [| 1e9; 1e9 +. 1.; -1e9 |] in
  let i = Prim.Exp_mech.select r ~eps:1.0 ~sensitivity:1.0 ~qualities in
  check_true "selection valid" (i = 0 || i = 1)

let test_exp_mech_select_elt () =
  let r = rng () in
  let best =
    Prim.Exp_mech.select_elt r ~eps:10.0 ~sensitivity:1.0
      ~quality:(fun s -> float_of_int (String.length s))
      [| "a"; "abcdefghijklmnop"; "ab" |]
  in
  check_true "picks longest" (best = "abcdefghijklmnop")

let test_exp_mech_error_bound () =
  let b = Prim.Exp_mech.error_bound ~eps:1.0 ~sensitivity:1.0 ~n_candidates:100 ~beta:0.1 in
  check_float ~tol:1e-9 "error bound formula" (2. *. log 1000.) b

(* --- Report noisy max --- *)

let test_noisy_max () =
  let r = rng () in
  let scores = [| 1.; 2.; 50.; 3. |] in
  let hits = ref 0 in
  for _ = 1 to 500 do
    if Prim.Noisy_max.argmax r ~eps:1.0 ~sensitivity:1.0 scores = 2 then incr hits
  done;
  check_true "argmax dominates" (!hits > 490);
  let i, v = Prim.Noisy_max.argmax_value r ~eps:1.0 ~sensitivity:1.0 scores in
  check_true "value near score" (i <> 2 || Float.abs (v -. 50.) < 40.)

let suite =
  [
    case "dp validation" test_dp_validation;
    case "dp split and scale" test_dp_split_scale;
    case "laplace count unbiased" test_laplace_count_unbiased;
    case "laplace sensitivity scaling" test_laplace_scale_with_sensitivity;
    case "laplace vector" test_laplace_vector;
    case "laplace tail bound is tight" test_laplace_tail_bound;
    case "laplace validation" test_laplace_validation;
    case "gaussian sigma formula" test_gaussian_sigma_formula;
    case "gaussian empirical noise level" test_gaussian_vector_noise_level;
    case "gaussian scalar" test_gaussian_scalar;
    case "gaussian coordinate tail" test_gaussian_coordinate_tail;
    case "gaussian validation" test_gaussian_validation;
    case "exp mech prefers best" test_exp_mech_prefers_best;
    case "exp mech exact two-candidate law" test_exp_mech_distribution;
    case "exp mech huge scores" test_exp_mech_huge_scores_no_overflow;
    case "exp mech select_elt" test_exp_mech_select_elt;
    case "exp mech error bound" test_exp_mech_error_bound;
    case "report noisy max" test_noisy_max;
  ]
