lib/core/outlier.ml: Array Float Geometry Good_radius One_cluster Prim
