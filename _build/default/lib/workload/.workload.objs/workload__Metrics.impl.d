lib/workload/metrics.ml: Array Baselines Float Geometry List
