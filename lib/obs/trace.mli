(** Chrome trace-event export.

    Converts collected {!Span.span}s into the Trace Event Format consumed
    by Perfetto ([ui.perfetto.dev]) and [chrome://tracing]: a JSON object
    with a [traceEvents] array of complete ("X") events — one per span —
    plus instant ("i") events for zero-duration events (budget ledger
    operations, retries) and metadata ("M") events naming each domain's
    track.

    Timestamps are microseconds, rebased so the earliest span starts at
    0; [pid] is always 1 and [tid] is the OCaml domain id, so Perfetto
    shows one lane per domain with nesting inside each lane. *)

val to_json : Span.span list -> Json.t

val to_string : Span.span list -> string
(** [Json.to_string (to_json spans)]. *)

val validate : Json.t -> (unit, string) result
(** Structural schema check: top level is an object with a [traceEvents]
    array; every event has string [name], [cat] and [ph], numeric [ts],
    [pid] and [tid]; ["X"] events also carry a non-negative [dur].  Used
    by the golden test and the [validate-trace] CLI command. *)
