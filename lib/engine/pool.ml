type 'a task = { payload : 'a; deadline_s : float option }

let task ?deadline_s payload = { payload; deadline_s }

type 'b outcome = Done of 'b | Timed_out of { elapsed_ms : float } | Failed of string

let outcome_name = function Done _ -> "ok" | Timed_out _ -> "timeout" | Failed _ -> "failed"

exception Worker_crash of string

type event = Task_retry of { index : int; attempt : int } | Worker_restart

let recommended_domains () = min 8 (Domain.recommended_domain_count ())

(* Backoff before retry [attempt] (attempt ≥ 1): capped exponential.  Purely a
   pacing concern — determinism never depends on it, because every attempt of a
   task replays the same derived RNG stream. *)
let backoff_delay ~backoff_s attempt =
  Float.min 0.25 (backoff_s *. (2. ** float_of_int (attempt - 1)))

let run ?(retries = 0) ?(backoff_s = 1e-3) ?max_restarts ?(on_event = fun _ -> ())
    ?trace_parent ~domains ~f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    let max_restarts = match max_restarts with Some m -> max 0 m | None -> 2 * domains in
    let results = Array.make n (Failed "never ran") in
    let next = Atomic.make 0 in
    (* Tasks whose worker died mid-flight, waiting to be picked up again.  The
       dying worker pushes here *before* arranging its replacement, so every
       rescheduled index always has a live worker able to reach it. *)
    let rescheduled = ref [] in
    let resched_mutex = Mutex.create () in
    let restarts_left = Atomic.make max_restarts in
    (* Every attempt of task [i] bumps this; exclusive task ownership (each
       index is held by exactly one worker at a time) makes plain reads and
       writes safe, and a crash hands the count to the replacement so an
       injected fault keyed on the attempt number cannot re-fire forever. *)
    let attempts = Array.make n 0 in
    let t0 = Unix.gettimeofday () in
    let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
    (* Domains still to be joined; replacements register themselves here before
       their predecessor finishes dying, so the coordinator's drain loop below
       cannot miss one. *)
    let doms = ref [] in
    let doms_mutex = Mutex.create () in
    let register d =
      Mutex.lock doms_mutex;
      doms := d :: !doms;
      Mutex.unlock doms_mutex
    in
    let take () =
      Mutex.lock resched_mutex;
      match !rescheduled with
      | i :: rest ->
          rescheduled := rest;
          Mutex.unlock resched_mutex;
          Some i
      | [] ->
          Mutex.unlock resched_mutex;
          let i = Atomic.fetch_and_add next 1 in
          if i < n then Some i else None
    in
    let reschedule i =
      Mutex.lock resched_mutex;
      rescheduled := i :: !rescheduled;
      Mutex.unlock resched_mutex
    in
    (* [spawned] tells a dying worker how to arrange its succession: a spawned
       domain starts a replacement and returns (the domain ends — that is the
       death); the inline worker of a 1-domain pool simply continues as its own
       replacement. *)
    let rec worker ~spawned () =
      match take () with
      | None -> ()
      | Some i ->
          let { payload; deadline_s } = tasks.(i) in
          let expired () =
            match deadline_s with Some d -> elapsed_ms () >= d *. 1000. | None -> false
          in
          let rec attempt_task () =
            let a = attempts.(i) in
            attempts.(i) <- a + 1;
            if a > 0 then begin
              on_event (Task_retry { index = i; attempt = a });
              (* Worker domains have no open span; the batch span is
                 stitched in explicitly. *)
              Obs.Span.event ~cat:"pool" ?parent:trace_parent
                ~attrs:(fun () ->
                  [ ("index", Obs.Span.I i); ("attempt", Obs.Span.I a) ])
                "pool.retry";
              Unix.sleepf (backoff_delay ~backoff_s a)
            end;
            if expired () then Timed_out { elapsed_ms = elapsed_ms () }
            else
              match f ~index:i ~attempt:a payload with
              | v -> if expired () then Timed_out { elapsed_ms = elapsed_ms () } else Done v
              | exception (Worker_crash _ as e) -> raise e
              | exception exn ->
                  if a < retries then attempt_task () else Failed (Printexc.to_string exn)
          in
          (match attempt_task () with
          | outcome ->
              (* Slots are disjoint per index; Domain.join publishes the writes. *)
              results.(i) <- outcome;
              worker ~spawned ()
          | exception Worker_crash msg ->
              if Atomic.fetch_and_add restarts_left (-1) > 0 then begin
                reschedule i;
                on_event Worker_restart;
                Obs.Span.event ~cat:"pool" ?parent:trace_parent
                  ~attrs:(fun () -> [ ("index", Obs.Span.I i) ])
                  "pool.restart";
                if spawned then register (Domain.spawn (worker ~spawned:true))
                else worker ~spawned ()
              end
              else begin
                (* Restart budget exhausted: dying now could strand the queue,
                   so the worker survives and the task takes the blame. *)
                results.(i) <- Failed ("worker crashed: " ^ msg);
                worker ~spawned ()
              end)
    in
    if domains = 1 then worker ~spawned:false ()
    else begin
      for _ = 1 to domains do
        register (Domain.spawn (worker ~spawned:true))
      done;
      let rec drain () =
        Mutex.lock doms_mutex;
        match !doms with
        | [] -> Mutex.unlock doms_mutex
        | d :: rest ->
            doms := rest;
            Mutex.unlock doms_mutex;
            Domain.join d;
            drain ()
      in
      drain ()
    end;
    results
  end
