examples/private_mean_sa.ml: Array Float Format Geometry Prim Printf Privcluster
