lib/core/k_cluster.ml: Array Float Geometry Good_radius List One_cluster
