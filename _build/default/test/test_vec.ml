(* Vector algebra, mostly property-based. *)

open Testutil

let vec_gen = QCheck2.Gen.(array_size (int_range 1 8) (float_range (-100.) 100.))

let pair_gen =
  QCheck2.Gen.(
    int_range 1 8 >>= fun d ->
    pair (array_size (return d) (float_range (-100.) 100.))
      (array_size (return d) (float_range (-100.) 100.)))

let triple_gen =
  QCheck2.Gen.(
    int_range 1 8 >>= fun d ->
    triple
      (array_size (return d) (float_range (-100.) 100.))
      (array_size (return d) (float_range (-100.) 100.))
      (array_size (return d) (float_range (-100.) 100.)))

let close a b = Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs a +. Float.abs b)

let qsuite =
  [
    qcheck "dist symmetric" pair_gen (fun (a, b) -> close (Geometry.Vec.dist a b) (Geometry.Vec.dist b a));
    qcheck "dist nonneg, zero iff equal-ish" vec_gen (fun a ->
        Geometry.Vec.dist a a = 0. && Geometry.Vec.dist a (Geometry.Vec.copy a) = 0.);
    qcheck "triangle inequality" triple_gen (fun (a, b, c) ->
        Geometry.Vec.dist a c <= Geometry.Vec.dist a b +. Geometry.Vec.dist b c +. 1e-6);
    qcheck "dist via sub/norm" pair_gen (fun (a, b) ->
        close (Geometry.Vec.dist a b) (Geometry.Vec.norm2 (Geometry.Vec.sub a b)));
    qcheck "dot symmetric" pair_gen (fun (a, b) -> close (Geometry.Vec.dot a b) (Geometry.Vec.dot b a));
    qcheck "cauchy-schwarz" pair_gen (fun (a, b) ->
        Float.abs (Geometry.Vec.dot a b) <= (Geometry.Vec.norm2 a *. Geometry.Vec.norm2 b) +. 1e-6);
    qcheck "scale linearity of norm" vec_gen (fun a ->
        close (Geometry.Vec.norm2 (Geometry.Vec.scale 3. a)) (3. *. Geometry.Vec.norm2 a));
    qcheck "add commutes" pair_gen (fun (a, b) ->
        Geometry.Vec.equal ~tol:1e-9 (Geometry.Vec.add a b) (Geometry.Vec.add b a));
    qcheck "norm ordering inf<=2<=1" vec_gen (fun a ->
        Geometry.Vec.norm_inf a <= Geometry.Vec.norm2 a +. 1e-9
        && Geometry.Vec.norm2 a <= Geometry.Vec.norm1 a +. 1e-9);
    qcheck "axpy matches add/scale" pair_gen (fun (a, b) ->
        let y = Geometry.Vec.copy b in
        Geometry.Vec.axpy 2.5 a y;
        Geometry.Vec.equal ~tol:1e-6 y (Geometry.Vec.add (Geometry.Vec.scale 2.5 a) b));
  ]

let test_mean () =
  let m = Geometry.Vec.mean [| [| 0.; 2. |]; [| 2.; 4. |]; [| 4.; 0. |] |] in
  check_float "mean x" 2. m.(0);
  check_float "mean y" 2. m.(1);
  Alcotest.check_raises "empty mean" (Invalid_argument "Vec.mean: empty") (fun () ->
      ignore (Geometry.Vec.mean [||]))

let test_normalize () =
  let v = Geometry.Vec.normalize [| 3.; 4. |] in
  check_float ~tol:1e-12 "unit norm" 1.0 (Geometry.Vec.norm2 v);
  check_float ~tol:1e-12 "direction" 0.6 v.(0);
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec.normalize: zero vector") (fun () ->
      ignore (Geometry.Vec.normalize [| 0.; 0. |]))

let test_dimension_mismatch () =
  Alcotest.check_raises "add mismatch" (Invalid_argument "Vec.add: dimension mismatch")
    (fun () -> ignore (Geometry.Vec.add [| 1. |] [| 1.; 2. |]))

let test_zero_and_of_list () =
  check_int "zero dim" 4 (Geometry.Vec.dim (Geometry.Vec.zero 4));
  check_float "zero content" 0. (Geometry.Vec.zero 4).(2);
  check_float "of_list" 2. (Geometry.Vec.of_list [ 1.; 2. ]).(1)

let suite =
  qsuite
  @ [
      case "mean" test_mean;
      case "normalize" test_normalize;
      case "dimension mismatch" test_dimension_mismatch;
      case "zero / of_list" test_zero_and_of_list;
    ]
