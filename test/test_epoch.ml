(* Epoch-versioned datasets and budget-aware result caching: append/retire
   differential equivalence against fresh registration, structural sharing
   across epochs, charge-free cache hits, post-mutation recomputation, and
   the standing-query budget schedule. *)

open Testutil

let p ~eps ~delta = { Prim.Dp.eps; delta }

(* --- registry epochs ----------------------------------------------------- *)

let test_epoch_versioning () =
  let _, grid, w = small_workload () in
  let base = Array.sub w.Workload.Synth.points 0 200 in
  let extra = Array.sub w.Workload.Synth.points 200 50 in
  let reg = Engine.Registry.create () in
  let ds =
    Engine.Registry.register reg ~name:"d" ~grid ~budget:(p ~eps:10. ~delta:1e-4) base
  in
  check_int "fresh dataset is epoch 0" 0 (Engine.Registry.epoch ds);
  (* Hold epoch 0's view across the mutations: structural sharing means it
     must stay valid and answer exactly as before. *)
  let idx0 = Engine.Registry.index ds in
  let counts0 = Geometry.Pointset.counts_within idx0 ~radius:0.1 in
  let e1 = Engine.Registry.append ds extra in
  check_int "append publishes epoch 1" 1 e1;
  check_int "append grows n" 250 (Engine.Registry.n ds);
  let e2 = Engine.Registry.retire ds ~from_:0 ~count:30 in
  check_int "retire publishes epoch 2" 2 e2;
  check_int "retire shrinks n" 220 (Engine.Registry.n ds);
  check_int "accessor agrees" 2 (Engine.Registry.epoch ds);
  check_true "old epoch still answers unchanged"
    (Geometry.Pointset.counts_within idx0 ~radius:0.1 = counts0);
  check_int "old epoch view keeps its size" 200
    (Geometry.Pointset.n (Geometry.Pointset.index_pointset idx0));
  (* Invalid mutations change nothing. *)
  (try
     ignore (Engine.Registry.retire ds ~from_:0 ~count:220);
     Alcotest.fail "emptying retire must be refused"
   with Invalid_argument _ -> ());
  (try
     ignore (Engine.Registry.append ds [||]);
     Alcotest.fail "empty append must be refused"
   with Invalid_argument _ -> ());
  check_int "failed mutations publish no epoch" 2 (Engine.Registry.epoch ds)

let test_mutation_invalidates_bounds_cache () =
  let _, grid, w = small_workload () in
  let reg = Engine.Registry.create () in
  let ds =
    Engine.Registry.register reg ~name:"d" ~grid ~budget:(p ~eps:10. ~delta:1e-4)
      (Array.sub w.Workload.Synth.points 0 300)
  in
  ignore (Engine.Registry.r_opt_bounds ds ~t:100);
  ignore (Engine.Registry.r_opt_bounds ds ~t:100);
  check_true "warm lookup hits" (Engine.Registry.bounds_cache_stats ds = (2, 1));
  ignore (Engine.Registry.append ds (Array.sub w.Workload.Synth.points 300 50));
  let b = Engine.Registry.r_opt_bounds ds ~t:100 in
  let lookups, hits = Engine.Registry.bounds_cache_stats ds in
  check_int "post-mutation lookup counted" 3 lookups;
  check_int "post-mutation lookup is a miss" 1 hits;
  (* And the recomputed sandwich is the new epoch's, not a stale replay. *)
  let lo, hi = Workload.Metrics.r_opt_bounds_indexed (Engine.Registry.index ds) ~t:100 in
  check_float ~tol:0. "fresh r_lo" lo (fst b);
  check_float ~tol:0. "fresh r_hi" hi (snd b)

(* --- differential: any append/retire sequence ≡ fresh registration ------- *)

(* Interpret a list of small ints as a mutation program over a model
   point array, applying each op to the registry dataset and the model in
   lockstep.  Appends draw from a fixed pool so both sides see the same
   rows. *)
let apply_ops ~dense_threshold ~grid ~base ~pool ops =
  let reg = Engine.Registry.create () in
  let ds =
    Engine.Registry.register reg ~name:"d" ~grid ~budget:(p ~eps:10. ~delta:1e-4)
      ~dense_threshold base
  in
  let model = ref (Array.copy base) in
  let pos = ref 0 in
  let applied = ref 0 in
  List.iter
    (fun c ->
      let c = abs c in
      let n = Array.length !model in
      if c land 1 = 0 then begin
        let k = 1 + (c / 2 mod 7) in
        let chunk =
          Array.init k (fun j -> pool.((!pos + j) mod Array.length pool))
        in
        pos := !pos + k;
        ignore (Engine.Registry.append ds chunk);
        model := Array.append !model chunk;
        incr applied
      end
      else begin
        let from_ = c / 2 mod n in
        let count = min (1 + (c / 2 mod 5)) (min (n - from_) (n - 1)) in
        if count >= 1 then begin
          ignore (Engine.Registry.retire ds ~from_ ~count);
          model :=
            Array.append (Array.sub !model 0 from_)
              (Array.sub !model (from_ + count) (n - from_ - count));
          incr applied
        end
      end)
    ops;
  (ds, !model, !applied)

let same_answers what a b =
  let n = Geometry.Pointset.n (Geometry.Pointset.index_pointset a) in
  check_int (what ^ ": same size") n
    (Geometry.Pointset.n (Geometry.Pointset.index_pointset b));
  check_true
    (what ^ ": counts_within bit-identical")
    (Geometry.Pointset.counts_within a ~radius:0.1
    = Geometry.Pointset.counts_within b ~radius:0.1);
  check_float ~tol:0. (what ^ ": score_l bit-identical")
    (Geometry.Pointset.score_l a ~cap:20 ~radius:0.08)
    (Geometry.Pointset.score_l b ~cap:20 ~radius:0.08);
  let k = min 5 (n - 1) in
  if k >= 1 then
    List.iter
      (fun i ->
        if i < n then
          check_float ~tol:0.
            (Printf.sprintf "%s: kth_neighbor_distance(%d) bit-identical" what i)
            (Geometry.Pointset.kth_neighbor_distance a ~k i)
            (Geometry.Pointset.kth_neighbor_distance b ~k i))
      [ 0; n / 2; n - 1 ]

let test_epoch_differential =
  let _, grid, w = small_workload () in
  let base = Array.sub w.Workload.Synth.points 0 40 in
  let pool = Array.sub w.Workload.Synth.points 40 200 in
  qcheck ~count:30 "any append/retire sequence ≡ fresh registration"
    QCheck2.Gen.(list_size (int_bound 10) (int_bound 4096))
    (fun ops ->
      (* Forced k-d tree on both sides: incremental insert/remove (plus
         occasional rebuilds) against a from-scratch build. *)
      List.iter
        (fun dense_threshold ->
          let ds, model, applied =
            apply_ops ~dense_threshold ~grid ~base ~pool ops
          in
          Alcotest.(check int)
            "each applied op bumps the epoch" applied (Engine.Registry.epoch ds);
          let fresh = Engine.Registry.create () in
          let fd =
            Engine.Registry.register fresh ~name:"f" ~grid
              ~budget:(p ~eps:10. ~delta:1e-4) ~dense_threshold model
          in
          let what = if dense_threshold = 0 then "tree" else "dense" in
          check_true
            (what ^ ": backend as forced")
            (Geometry.Pointset.index_is_dense (Engine.Registry.index ds)
            = (dense_threshold <> 0));
          same_answers what (Engine.Registry.index ds) (Engine.Registry.index fd))
        [ 0; max_int ];
      true)

(* --- service: cache hits are free, mutations invalidate ------------------ *)

let cache_jobs = "one_cluster t_fraction=0.5 eps=2.0 delta=1e-6 id=q1\nquantile q=0.5 axis=0 eps=0.1 id=med\n"

let parse_jobs s =
  match Engine.Job.parse s with Ok l -> l | Error e -> Alcotest.failf "parse: %s" e

let outputs_of results =
  List.map
    (fun (r : Engine.Job.result) ->
      match r.Engine.Job.status with
      | Engine.Job.Completed o -> Engine.Job.output_to_wire o
      | st -> Alcotest.failf "job %s not ok: %s" r.Engine.Job.spec.Engine.Job.id
                (Engine.Job.status_name st))
    results

let test_cache_hit_charges_nothing () =
  let _, grid, w = small_workload () in
  let svc = Engine.Service.create ~domains:2 () in
  let ds =
    Engine.Service.register svc ~name:"c" ~grid ~budget:(p ~eps:20. ~delta:1e-3)
      w.Workload.Synth.points
  in
  let specs = parse_jobs cache_jobs in
  let cold = Engine.Service.run_batch ~seed:5 svc ~dataset:ds specs in
  let acct = Engine.Registry.accountant ds in
  let spent_cold = Engine.Accountant.spent acct in
  check_float ~tol:1e-12 "cold run charged both jobs" 2.1 spent_cold.Prim.Dp.eps;
  let warm = Engine.Service.run_batch ~seed:5 svc ~dataset:ds specs in
  List.iter
    (fun (r : Engine.Job.result) ->
      check_int
        (r.Engine.Job.spec.Engine.Job.id ^ ": cache hit executes nothing")
        0 r.Engine.Job.attempts)
    warm;
  check_true "recorded answers returned bit-identically"
    (outputs_of cold = outputs_of warm);
  let spent_warm = Engine.Accountant.spent acct in
  check_float ~tol:0. "warm run charged nothing (eps)" spent_cold.Prim.Dp.eps
    spent_warm.Prim.Dp.eps;
  check_float ~tol:0. "warm run charged nothing (delta)" spent_cold.Prim.Dp.delta
    spent_warm.Prim.Dp.delta;
  check_true "per-dataset stats saw 2 misses then 2 hits"
    (Engine.Result_cache.stats (Engine.Service.result_cache svc) ~dataset:"c" = (2, 2));
  (* A different seed is different randomness: it must miss and pay. *)
  ignore (Engine.Service.run_batch ~seed:6 svc ~dataset:ds specs);
  let spent_reseeded = Engine.Accountant.spent acct in
  check_float ~tol:1e-12 "new seed recomputes and charges"
    (2. *. spent_cold.Prim.Dp.eps) spent_reseeded.Prim.Dp.eps

let test_mutation_forces_recompute () =
  let _, grid, w = small_workload () in
  let svc = Engine.Service.create ~domains:2 () in
  let ds =
    Engine.Service.register svc ~name:"m" ~grid ~budget:(p ~eps:20. ~delta:1e-3)
      w.Workload.Synth.points
  in
  let specs = parse_jobs cache_jobs in
  ignore (Engine.Service.run_batch ~seed:5 svc ~dataset:ds specs);
  let acct = Engine.Registry.accountant ds in
  let spent1 = Engine.Accountant.spent acct in
  (* A mutate line in the same batch: the queries after it are keyed on —
     and computed against — the new epoch, so they recompute and pay. *)
  let batch2 = parse_jobs ("mutate op=append n=60 seed=11\n" ^ cache_jobs) in
  let results = Engine.Service.run_batch ~seed:5 svc ~dataset:ds batch2 in
  (match results with
  | m :: rest ->
      (match m.Engine.Job.status with
      | Engine.Job.Completed (Engine.Job.Epoch_advanced { epoch; n }) ->
          check_int "mutate advanced to epoch 1" 1 epoch;
          check_int "mutate reports the new size" 460 n
      | st -> Alcotest.failf "mutate: %s" (Engine.Job.status_name st));
      List.iter
        (fun (r : Engine.Job.result) ->
          check_true
            (r.Engine.Job.spec.Engine.Job.id ^ ": recomputed on the new epoch")
            (r.Engine.Job.attempts >= 1))
        rest
  | [] -> Alcotest.fail "no results");
  let spent2 = Engine.Accountant.spent acct in
  check_float ~tol:1e-12 "post-mutation queries paid again"
    (2. *. spent1.Prim.Dp.eps) spent2.Prim.Dp.eps;
  check_int "epoch is free: only the 2.1 recharged" 1 (Engine.Registry.epoch ds)

(* --- standing queries: the declared schedule is the ledger schedule ------ *)

let test_standing_budget_schedule () =
  let _, grid, w = small_workload () in
  let svc = Engine.Service.create ~domains:2 () in
  let ds =
    Engine.Service.register svc ~name:"s" ~grid ~budget:(p ~eps:20. ~delta:1e-3)
      w.Workload.Synth.points
  in
  let acct = Engine.Registry.accountant ds in
  let journaled = ref [] in
  Engine.Service.subscribe_standing svc (fun ~dataset ~line ~seed ~stream ->
      journaled := (dataset, line, seed, stream) :: !journaled);
  let reg =
    Engine.Service.run_batch ~seed:5 svc ~dataset:ds
      (parse_jobs "standing t_fraction=0.5 periods=3 eps=1.5 delta=3e-7 id=sq\n")
  in
  (* Registration acknowledges, then answers tick 1 on the current epoch. *)
  (match List.map (fun (r : Engine.Job.result) -> r.Engine.Job.spec.Engine.Job.id) reg with
  | [ "sq"; "sq#1" ] -> ()
  | ids -> Alcotest.failf "registration results: %s" (String.concat "," ids));
  (match (List.hd reg).Engine.Job.status with
  | Engine.Job.Completed (Engine.Job.Standing_accepted { periods }) ->
      check_int "accepted with the declared periods" 3 periods
  | st -> Alcotest.failf "standing: %s" (Engine.Job.status_name st));
  let spent = Engine.Accountant.spent acct in
  check_float ~tol:1e-12 "tick 1 committed one slice" 0.5 spent.Prim.Dp.eps;
  check_int "two slices still reserved" 2 (List.length (Engine.Accountant.outstanding acct));
  check_true "registration journaled for the WAL"
    (match !journaled with
    | [ ("s", line, 5, 0) ] -> (
        match Engine.Job.parse line with
        | Ok [ { Engine.Job.kind = Engine.Job.Standing { periods = 3; _ }; id = "sq"; _ } ] ->
            true
        | _ -> false)
    | _ -> false);
  check_true "query listed"
    (Engine.Service.standing_queries svc = [ ("s", "sq", 1, 3) ]);
  (* Each epoch transition answers one more tick, committing its slice —
     until the schedule is exhausted, after which mutations tick nothing. *)
  let mutate k =
    Engine.Service.run_batch ~seed:(100 + k) svc ~dataset:ds
      (parse_jobs (Printf.sprintf "mutate op=append n=20 seed=%d\n" (50 + k)))
  in
  let r2 = mutate 2 in
  check_int "tick 2 rode along with the mutation" 2 (List.length r2);
  check_true "tick 2 carries its slice id"
    (List.exists
       (fun (r : Engine.Job.result) -> r.Engine.Job.spec.Engine.Job.id = "sq#2")
       r2);
  check_float ~tol:1e-12 "tick 2 committed the second slice" 1.0
    (Engine.Accountant.spent acct).Prim.Dp.eps;
  let _r3 = mutate 3 in
  check_float ~tol:1e-12 "tick 3 committed the last slice" 1.5
    (Engine.Accountant.spent acct).Prim.Dp.eps;
  check_int "no reservations left" 0 (List.length (Engine.Accountant.outstanding acct));
  check_true "all ticks answered"
    (Engine.Service.standing_queries svc = [ ("s", "sq", 3, 3) ]);
  let r4 = mutate 4 in
  check_int "exhausted schedule ticks nothing" 1 (List.length r4);
  check_float ~tol:0. "and charges nothing" 1.5 (Engine.Accountant.spent acct).Prim.Dp.eps

let suite =
  [
    case "epoch versioning and structural sharing" test_epoch_versioning;
    case "mutation invalidates the bounds cache" test_mutation_invalidates_bounds_cache;
    test_epoch_differential;
    slow_case "cache hit charges nothing" test_cache_hit_charges_nothing;
    slow_case "mutation forces recompute and recharge" test_mutation_forces_recompute;
    slow_case "standing budget schedule" test_standing_budget_schedule;
  ]
