(* k-d tree over flat row-major storage.  The tree never copies point
   coordinates: it keeps a reference to the backing store and permutes an
   array of row offsets.  The build replays exactly the same
   median-quickselect comparison sequence as the historical boxed build, so
   tree structure and query results are bit-identical to the old
   [Vec.t array] implementation on the same input. *)

type node =
  | Leaf of { lo : int; hi : int }  (** [idx.(lo..hi)] inclusive. *)
  | Split of {
      axis : int;
      threshold : float;  (** left: coordinate <= threshold; right: >. *)
      left : node;
      right : node;
      bbox_lo : Vec.t;
      bbox_hi : Vec.t;
      size : int;
    }

type t = { st : float array; idx : int array; root : node; size : int; dim : int }

let leaf_capacity = 16

let bbox st dim idx lo hi =
  let blo = Array.make dim infinity and bhi = Array.make dim neg_infinity in
  for i = lo to hi do
    let off = idx.(i) in
    for j = 0 to dim - 1 do
      let x = st.(off + j) in
      if x < blo.(j) then blo.(j) <- x;
      if x > bhi.(j) then bhi.(j) <- x
    done
  done;
  (blo, bhi)

let widest_axis lo hi =
  let best = ref 0 and best_w = ref neg_infinity in
  Array.iteri
    (fun i l ->
      let w = hi.(i) -. l in
      if w > !best_w then begin
        best_w := w;
        best := i
      end)
    lo;
  !best

(* In-place quickselect partition of idx[lo..hi] by coordinate [axis] so
   that index mid holds the median element. *)
let rec select st idx axis lo hi mid =
  if lo < hi then begin
    let pivot = st.(idx.((lo + hi) / 2) + axis) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while st.(idx.(!i) + axis) < pivot do incr i done;
      while st.(idx.(!j) + axis) > pivot do decr j done;
      if !i <= !j then begin
        let tmp = idx.(!i) in
        idx.(!i) <- idx.(!j);
        idx.(!j) <- tmp;
        incr i;
        decr j
      end
    done;
    if mid <= !j then select st idx axis lo !j mid
    else if mid >= !i then select st idx axis !i hi mid
  end

let rec build_node st dim idx lo hi =
  let n = hi - lo + 1 in
  if n <= leaf_capacity then Leaf { lo; hi }
  else begin
    let blo, bhi = bbox st dim idx lo hi in
    let axis = widest_axis blo bhi in
    if bhi.(axis) -. blo.(axis) <= 0. then Leaf { lo; hi }
    else begin
      let mid = lo + (n / 2) in
      select st idx axis lo hi mid;
      let threshold = st.(idx.(mid) + axis) in
      Split
        {
          axis;
          threshold;
          left = build_node st dim idx lo mid;
          right = build_node st dim idx (mid + 1) hi;
          bbox_lo = blo;
          bbox_hi = bhi;
          size = n;
        }
    end
  end

(* Parallel build.  A serial "skeleton" pass performs the top split
   decisions exactly as [build_node] would (same bbox scan, same axis
   choice, same quickselect partition on the shared [idx] array), but stops
   descending after [depth] levels and records the remaining subtrees as
   jobs.  Each job owns a disjoint [idx] range fully determined by its
   ancestors' partitions, so worker domains can run [build_node] on their
   jobs concurrently: they touch disjoint slices of [idx] and the final
   permutation and node structure are bit-identical to the serial build
   for any number of domains. *)
type skel =
  | S_done of node  (** subtree fully built during the skeleton pass *)
  | S_job of int  (** deferred: results.(jid) built by a worker *)
  | S_split of {
      axis : int;
      threshold : float;
      bbox_lo : Vec.t;
      bbox_hi : Vec.t;
      size : int;
      left : skel;
      right : skel;
    }

let rec build_skeleton st dim idx lo hi depth jobs next_jid =
  let n = hi - lo + 1 in
  if n <= leaf_capacity then S_done (Leaf { lo; hi })
  else if depth = 0 then begin
    let jid = !next_jid in
    incr next_jid;
    jobs := (jid, lo, hi) :: !jobs;
    S_job jid
  end
  else begin
    let blo, bhi = bbox st dim idx lo hi in
    let axis = widest_axis blo bhi in
    if bhi.(axis) -. blo.(axis) <= 0. then S_done (Leaf { lo; hi })
    else begin
      let mid = lo + (n / 2) in
      select st idx axis lo hi mid;
      let threshold = st.(idx.(mid) + axis) in
      let left = build_skeleton st dim idx lo mid (depth - 1) jobs next_jid in
      let right = build_skeleton st dim idx (mid + 1) hi (depth - 1) jobs next_jid in
      S_split { axis; threshold; bbox_lo = blo; bbox_hi = bhi; size = n; left; right }
    end
  end

let rec node_of_skel results = function
  | S_done nd -> nd
  | S_job jid -> results.(jid)
  | S_split { axis; threshold; bbox_lo; bbox_hi; size; left; right } ->
      Split
        {
          axis;
          threshold;
          left = node_of_skel results left;
          right = node_of_skel results right;
          bbox_lo;
          bbox_hi;
          size;
        }

let build_root ?(domains = 1) storage dim idx n =
  if domains <= 1 then build_node storage dim idx 0 (n - 1)
  else begin
    (* Enough skeleton levels to hand every domain several jobs. *)
    let depth =
      let d = ref 0 in
      while 1 lsl !d < 4 * domains do incr d done;
      !d
    in
    let jobs = ref [] and next_jid = ref 0 in
    let skel = build_skeleton storage dim idx 0 (n - 1) depth jobs next_jid in
    let jobs = Array.of_list (List.rev !jobs) in
    let results = Array.make (Array.length jobs) (Leaf { lo = 0; hi = -1 }) in
    let njobs = Array.length jobs in
    if njobs > 0 then begin
      let cursor = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let j = Atomic.fetch_and_add cursor 1 in
          if j < njobs then begin
            let jid, lo, hi = jobs.(j) in
            results.(jid) <- build_node storage dim idx lo hi;
            loop ()
          end
        in
        loop ()
      in
      let spawned = min (domains - 1) (max 0 (njobs - 1)) in
      let handles = List.init spawned (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join handles
    end;
    node_of_skel results skel
  end

let build_flat ?domains ~storage ~offs ~dim () =
  let n = Array.length offs in
  if n = 0 then invalid_arg "Kdtree.build: empty";
  let idx = Array.copy offs in
  { st = storage; idx; root = build_root ?domains storage dim idx n; size = n; dim }

let build points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kdtree.build: empty";
  let d = Vec.dim points.(0) in
  Array.iter
    (fun p -> if Vec.dim p <> d then invalid_arg "Kdtree.build: mixed dimensions")
    points;
  let storage = Array.make (n * d) 0. in
  Array.iteri (fun i p -> Vec.set_row storage ~off:(i * d) p) points;
  build_flat ~storage ~offs:(Array.init n (fun i -> i * d)) ~dim:d ()

let size t = t.size
let dim t = t.dim

(* --- incremental maintenance ------------------------------------------- *)

(* Re-point the tree at a grown backing store whose prefix is the old one.
   Every offset the tree holds indexes the identical coordinates, so all
   query results are bit-identical; only the array the reads go through
   changes.  The caller owns the prefix-equality contract (the registry's
   append-only arena satisfies it by construction). *)
let with_storage t ~storage =
  if Array.length storage < Array.length t.st then
    invalid_arg "Kdtree.with_storage: new storage smaller than the old";
  if storage == t.st then t else { t with st = storage }

(* Bulk insert without re-splitting: each new offset descends the existing
   split structure to its leaf (the same <= threshold comparison queries
   use), leaves absorb their arrivals in append order, and split bboxes
   widen to cover them.  Counting queries are order-independent sums of
   per-point ball-membership tests, so a tree maintained this way answers
   every count (and everything derived from counts, e.g. the radius
   bisection of [Pointset.kth_neighbor_distance]) bit-identically to a
   fresh build over the same points — only the traversal order differs.
   Leaves grow past [leaf_capacity] here; the registry bounds the
   degradation with a drift threshold that triggers a full rebuild. *)
let insert_bulk t ~offs:new_offs =
  let k = Array.length new_offs in
  if k = 0 then t
  else begin
    let st = t.st and dim = t.dim in
    Array.iter
      (fun off ->
        if off < 0 || off + dim > Array.length st then
          invalid_arg "Kdtree.insert_bulk: offset out of storage bounds")
      new_offs;
    let idx' = Array.make (t.size + k) 0 in
    let pos = ref 0 in
    (* Emit the tree left-to-right: each subtree copies its old entries and
       appends the new offsets routed into it, so leaf intervals stay
       contiguous in the rebuilt [idx'] permutation. *)
    let rec emit node extra =
      match node with
      | Leaf { lo; hi } ->
          let lo' = !pos in
          for i = lo to hi do
            idx'.(!pos) <- t.idx.(i);
            incr pos
          done;
          List.iter
            (fun off ->
              idx'.(!pos) <- off;
              incr pos)
            extra;
          Leaf { lo = lo'; hi = !pos - 1 }
      | Split { axis; threshold; left; right; bbox_lo; bbox_hi; size } ->
          let added = List.length extra in
          let blo, bhi =
            if added = 0 then (bbox_lo, bbox_hi)
            else begin
              let blo = Array.copy bbox_lo and bhi = Array.copy bbox_hi in
              List.iter
                (fun off ->
                  for j = 0 to dim - 1 do
                    let x = st.(off + j) in
                    if x < blo.(j) then blo.(j) <- x;
                    if x > bhi.(j) then bhi.(j) <- x
                  done)
                extra;
              (blo, bhi)
            end
          in
          let lefts, rights =
            List.partition (fun off -> st.(off + axis) <= threshold) extra
          in
          let left = emit left lefts in
          let right = emit right rights in
          Split { axis; threshold; left; right; bbox_lo = blo; bbox_hi = bhi; size = size + added }
    in
    let root = emit t.root (Array.to_list new_offs) in
    { t with idx = idx'; root; size = t.size + k }
  end

(* Bulk removal: one emit pass dropping every offset [dead] selects.  Split
   bboxes are kept (now possibly loose): a too-wide box only weakens
   pruning — the near-distance bound stays a valid lower bound and the
   full-containment shortcut still counts exactly the points present — so
   counts remain exact and bit-identical to a fresh build.  Emptied leaves
   are left in place as [lo > hi] intervals, which every traversal already
   skips. *)
let remove_bulk t ~dead =
  let idx' = Array.make (max 1 t.size) 0 in
  let pos = ref 0 in
  let rec emit node =
    match node with
    | Leaf { lo; hi } ->
        let lo' = !pos in
        for i = lo to hi do
          let off = t.idx.(i) in
          if not (dead off) then begin
            idx'.(!pos) <- off;
            incr pos
          end
        done;
        Leaf { lo = lo'; hi = !pos - 1 }
    | Split { axis; threshold; left; right; bbox_lo; bbox_hi; size = _ } ->
        let before = !pos in
        let left = emit left in
        let right = emit right in
        Split { axis; threshold; left; right; bbox_lo; bbox_hi; size = !pos - before }
  in
  let root = emit t.root in
  { t with idx = Array.sub idx' 0 !pos; root; size = !pos }

(* Squared distance from a point to an axis-aligned box. *)
let box_dist_sq lo hi p =
  let acc = ref 0. in
  for i = 0 to Array.length p - 1 do
    let d = if p.(i) < lo.(i) then lo.(i) -. p.(i) else if p.(i) > hi.(i) then p.(i) -. hi.(i) else 0. in
    acc := !acc +. (d *. d)
  done;
  !acc

(* Squared distance from a point to the farthest corner of a box. *)
let box_far_dist_sq lo hi p =
  let acc = ref 0. in
  for i = 0 to Array.length p - 1 do
    let d = Float.max (Float.abs (p.(i) -. lo.(i))) (Float.abs (p.(i) -. hi.(i))) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* Same, against a flat row rather than a boxed center. *)
let box_dist_sq_row lo hi cst coff =
  let acc = ref 0. in
  for i = 0 to Array.length lo - 1 do
    let x = cst.(coff + i) in
    let d = if x < lo.(i) then lo.(i) -. x else if x > hi.(i) then x -. hi.(i) else 0. in
    acc := !acc +. (d *. d)
  done;
  !acc

let box_far_dist_sq_row lo hi cst coff =
  let acc = ref 0. in
  for i = 0 to Array.length lo - 1 do
    let x = cst.(coff + i) in
    let d = Float.max (Float.abs (x -. lo.(i))) (Float.abs (x -. hi.(i))) in
    acc := !acc +. (d *. d)
  done;
  !acc

let node_size = function Leaf { lo; hi } -> hi - lo + 1 | Split { size; _ } -> size

let rec count_node t node center r2 =
  match node with
  | Leaf { lo; hi } ->
      if lo > hi then 0
      else
        Kernel.count_within ~st:t.st ~offs:t.idx ~lo ~hi ~q:center ~qoff:0 ~dim:t.dim ~r2
  | Split { left; right; bbox_lo; bbox_hi; _ } ->
      if box_dist_sq bbox_lo bbox_hi center > r2 then 0
      else if box_far_dist_sq bbox_lo bbox_hi center <= r2 then node_size node
      else count_node t left center r2 + count_node t right center r2

let count_within t ~center ~radius =
  if radius < 0. then 0 else count_node t t.root center (radius *. radius)

(* Center given as a row of some flat store (possibly [t]'s own). *)
let rec count_node_row t node cst coff r2 =
  match node with
  | Leaf { lo; hi } ->
      if lo > hi then 0
      else Kernel.count_within ~st:t.st ~offs:t.idx ~lo ~hi ~q:cst ~qoff:coff ~dim:t.dim ~r2
  | Split { left; right; bbox_lo; bbox_hi; _ } ->
      if box_dist_sq_row bbox_lo bbox_hi cst coff > r2 then 0
      else if box_far_dist_sq_row bbox_lo bbox_hi cst coff <= r2 then node_size node
      else count_node_row t left cst coff r2 + count_node_row t right cst coff r2

let count_within_row t cst ~off ~radius =
  if radius < 0. then 0 else count_node_row t t.root cst off (radius *. radius)

let iter_within_offs t ~center ~radius f =
  if radius >= 0. then begin
    let r2 = radius *. radius in
    let rec go = function
      | Leaf { lo; hi } ->
          for i = lo to hi do
            let off = t.idx.(i) in
            if Vec.dist_sq_to_row t.st ~off ~dim:t.dim center <= r2 then f off
          done
      | Split { left; right; bbox_lo; bbox_hi; _ } ->
          if box_dist_sq bbox_lo bbox_hi center <= r2 then begin
            go left;
            go right
          end
    in
    go t.root
  end

let iter_within t ~center ~radius f =
  iter_within_offs t ~center ~radius (fun off -> f (Vec.of_row t.st ~off ~dim:t.dim))

let points_within t ~center ~radius =
  let acc = ref [] in
  iter_within_offs t ~center ~radius (fun off -> acc := off :: !acc);
  let offs = Array.of_list (List.rev !acc) in
  Array.map (fun off -> Vec.of_row t.st ~off ~dim:t.dim) offs

let nearest t query =
  let best = ref (-1) and best_d2 = ref infinity in
  let rec go = function
    | Leaf { lo; hi } ->
        for i = lo to hi do
          let off = t.idx.(i) in
          let d2 = Vec.dist_sq_to_row t.st ~off ~dim:t.dim query in
          if d2 < !best_d2 then begin
            best_d2 := d2;
            best := off
          end
        done
    | Split { left; right; bbox_lo; bbox_hi; axis; threshold; _ } ->
        if box_dist_sq bbox_lo bbox_hi query < !best_d2 then begin
          (* Visit the side containing the query first. *)
          let first, second = if query.(axis) <= threshold then (left, right) else (right, left) in
          go first;
          go second
        end
  in
  go t.root;
  if !best < 0 then invalid_arg "Kdtree.nearest: empty tree"
  else (Vec.of_row t.st ~off:!best ~dim:t.dim, sqrt !best_d2)

let counts_within_all t centers ~radius =
  Array.map (fun c -> count_within t ~center:c ~radius) centers

let counts_within_rows t cst ~offs ~radius =
  Array.map (fun off -> count_within_row t cst ~off ~radius) offs

let row_order t = Array.copy t.idx

(* One query, many radii in a single traversal.  [radii] must be ascending
   and non-negative; [r2s] is then ascending too, so at every node the
   radii still "in play" form a window [jlo, jhi): below it the subtree is
   pruned (near-distance > r²), at/above [jfull] the subtree is fully
   contained (far-distance <= r²) and contributes its size to every such
   radius at once.  Memberships are recorded in a difference array and
   prefix-summed, producing exactly the integer counts of [nr] independent
   [count_within_row] calls — integer sums of the same per-point
   ball-membership indicators, in a different order. *)
let count_within_row_many t cst ~off:coff ~radii ~out ~stride ~col =
  let nr = Array.length radii in
  if nr > 0 then begin
    let r2s = Array.map (fun r -> r *. r) radii in
    let acc = Array.make (nr + 1) 0 in
    (* First index in [jlo, jhi) whose r² clears [bound]. *)
    let first_ge jlo jhi bound =
      let a = ref jlo and b = ref jhi in
      while !a < !b do
        let mid = (!a + !b) / 2 in
        if r2s.(mid) >= bound then b := mid else a := mid + 1
      done;
      !a
    in
    let rec go node jlo jhi =
      if jlo < jhi then
        match node with
        | Leaf { lo; hi } ->
            if lo <= hi then
              Kernel.leaf_multi_count ~st:t.st ~idx:t.idx ~lo ~hi ~q:cst ~qoff:coff
                ~dim:t.dim ~r2s ~jlo ~jhi ~acc
        | Split { left; right; bbox_lo; bbox_hi; _ } as nd ->
            let jlo = first_ge jlo jhi (box_dist_sq_row bbox_lo bbox_hi cst coff) in
            if jlo < jhi then begin
              let jfull = first_ge jlo jhi (box_far_dist_sq_row bbox_lo bbox_hi cst coff) in
              if jfull < jhi then begin
                let s = node_size nd in
                acc.(jfull) <- acc.(jfull) + s;
                acc.(jhi) <- acc.(jhi) - s
              end;
              if jlo < jfull then begin
                go left jlo jfull;
                go right jlo jfull
              end
            end
    in
    go t.root 0 nr;
    let running = ref 0 in
    for j = 0 to nr - 1 do
      running := !running + acc.(j);
      out.((j * stride) + col) <- !running
    done
  end
