(** Job descriptions and results for the query engine.

    A job is one private query against a registered dataset, carrying its
    own [(ε, δ)] price (what the accountant is asked for), a failure
    probability β where the underlying solver takes one, and an optional
    deadline.  Three kinds map onto the three entry points the engine
    serves:

    - [one_cluster] — {!Privcluster.One_cluster.run_indexed} at
      [t = ⌈t_fraction · n⌉];
    - [k_cluster] — {!Privcluster.K_cluster.run} (Observation 3.5);
    - [quantile] — {!Privcluster.Quantile.quantile} on one coordinate axis
      of the dataset (an [(ε, 0)]-DP query; [delta] defaults to 0).

    {2 Jobs-file format}

    One job per line; [#] starts a comment; blank lines are skipped:

    {v
    # kind        key=value ...
    one_cluster   t_fraction=0.45 eps=0.5 delta=1e-7
    k_cluster     k=3 t_fraction=0.2 eps=1.0 delta=1e-7 deadline=30
    quantile      q=0.5 axis=0 eps=0.25 id=median-x
    v}

    Recognized keys: [eps] (required), [delta] (required for [one_cluster]
    and [k_cluster], default [0] otherwise), [beta] (default 0.1),
    [t_fraction] (default 0.5), [k] (required for [k_cluster]), [q]
    (default 0.5), [axis] (default 0), [deadline] (seconds, default none),
    [id] (default ["j<line-position>"]). *)

type kind =
  | One_cluster of { t_fraction : float }
  | K_cluster of { k : int; t_fraction : float }
  | Quantile of { axis : int; q : float }

type spec = {
  id : string;
  kind : kind;
  eps : float;
  delta : float;
  beta : float;
  deadline_s : float option;
}

val kind_name : kind -> string
(** ["one_cluster"], ["k_cluster"], ["quantile"]. *)

val cost : spec -> Prim.Dp.params
(** What the accountant is charged: the job's [(ε, δ)]. *)

val parse : ?default_beta:float -> string -> (spec list, string) result
(** Parse a whole jobs file (the contents, not a path).  [Error] carries a
    one-line message with the offending line number. *)

val spec_to_line : spec -> string
(** Render a spec back to the file format ([parse]-roundtrippable). *)

(** {1 Results} *)

type ball = { center : Geometry.Vec.t; radius : float; covered : int }

type output =
  | Cluster of { ball : ball; t : int; ratio_vs_hi : float; delta_bound : float }
      (** [ratio_vs_hi] is radius / r_hi against the registry's cached
          sandwich (the experiment suite's [w_private]). *)
  | Clusters of { balls : ball list; uncovered : int; failures : int }
  | Quantile_value of { value : float; target_rank : float }

type status =
  | Completed of output
  | Refused of string  (** Accountant refusal — the job never ran. *)
  | Timed_out of { elapsed_ms : float }
  | Solver_failed of string
      (** The private solver returned its failure value (or raised); the
          budget stays charged — noise was drawn. *)

val status_name : status -> string
(** ["ok"], ["refused"], ["timeout"], ["failed"] — the telemetry status
    vocabulary. *)

type result = { spec : spec; status : status; latency_ms : float }

val result_to_json : result -> Json.t

val detail : result -> string
(** The headline numbers (or the refusal/failure message) alone — the
    CLI's table cell. *)

val pp_result : Format.formatter -> result -> unit
(** One line: id, kind, status, latency, {!detail}. *)
