(* Lloyd's k-means and the private k-means compilation. *)

open Testutil

let three_clusters rng ~per =
  let centers = [| [| 0.2; 0.2 |]; [| 0.8; 0.2 |]; [| 0.5; 0.8 |] |] in
  let pts =
    Array.init (3 * per) (fun i ->
        let c = centers.(i mod 3) in
        Array.map (fun x -> x +. Prim.Rng.gaussian rng ~sigma:0.02 ()) c)
  in
  (centers, pts)

let test_lloyd_recovers_centers () =
  let r = rng ~seed:33 () in
  let truth, pts = three_clusters r ~per:200 in
  let km = Geometry.Kmeans.lloyd r ~k:3 pts in
  check_int "three centers" 3 (Array.length km.Geometry.Kmeans.centers);
  Array.iter
    (fun c ->
      let nearest =
        Array.fold_left
          (fun acc got -> Float.min acc (Geometry.Vec.dist got c))
          infinity km.Geometry.Kmeans.centers
      in
      check_true "every true center matched" (nearest < 0.05))
    truth;
  check_true "iterated at least once" (km.Geometry.Kmeans.iterations >= 1);
  check_true "inertia consistent"
    (Float.abs
       (km.Geometry.Kmeans.inertia
       -. Geometry.Kmeans.inertia ~centers:km.Geometry.Kmeans.centers pts)
    < 1e-9)

let test_lloyd_improves_inertia () =
  let r = rng ~seed:35 () in
  let _, pts = three_clusters r ~per:100 in
  let km1 = Geometry.Kmeans.lloyd r ~k:1 pts in
  let km3 = Geometry.Kmeans.lloyd r ~k:3 pts in
  check_true "more centers, less inertia" (km3.Geometry.Kmeans.inertia < km1.Geometry.Kmeans.inertia)

let test_assign () =
  let centers = [| [| 0. |]; [| 1. |] |] in
  check_int "near zero" 0 (Geometry.Kmeans.assign centers [| 0.2 |]);
  check_int "near one" 1 (Geometry.Kmeans.assign centers [| 0.9 |])

let test_canonical_order () =
  let ordered = Geometry.Kmeans.canonical_order [| [| 0.9; 0. |]; [| 0.1; 1. |]; [| 0.1; 0.5 |] |] in
  check_float "first by x then y" 0.1 ordered.(0).(0);
  check_float "tie broken by y" 0.5 ordered.(0).(1);
  check_float "last" 0.9 ordered.(2).(0)

let test_flatten_roundtrip () =
  let centers = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let flat = Geometry.Kmeans.flatten centers in
  check_int "flat length" 4 (Array.length flat);
  let back = Geometry.Kmeans.unflatten ~d:2 flat in
  check_true "roundtrip"
    (Geometry.Vec.equal back.(0) centers.(0) && Geometry.Vec.equal back.(1) centers.(1));
  Alcotest.check_raises "bad length" (Invalid_argument "Kmeans.unflatten: length not a multiple of d")
    (fun () -> ignore (Geometry.Kmeans.unflatten ~d:3 flat))

let test_lloyd_validation () =
  let r = rng () in
  Alcotest.check_raises "k <= n" (Invalid_argument "Kmeans.lloyd: fewer points than centers")
    (fun () -> ignore (Geometry.Kmeans.lloyd r ~k:5 [| [| 0. |] |]))

let test_private_kmeans_end_to_end () =
  let r = rng ~seed:37 () in
  (* Block-count arithmetic: Algorithm 4 keeps k_blocks = n/(9·m) outputs
     and clusters t = alpha·k_blocks/2 of them, which must clear the
     stability-histogram threshold (~90 at eps = 3): n = 60000, m = 15
     gives 444 blocks and t = 177. *)
  let truth, pts = three_clusters r ~per:20_000 in
  match
    Privcluster.Kmeans_sa.run r Privcluster.Profile.practical ~axis_size:128 ~eps:4.0
      ~delta:1e-6 ~beta:0.1 ~k:3 ~block_size:15 ~alpha:0.8 pts
  with
  | Error f -> Alcotest.failf "private k-means failed: %a" Privcluster.One_cluster.pp_failure f
  | Ok result ->
      check_int "three private centers" 3 (Array.length result.Privcluster.Kmeans_sa.centers);
      Array.iter
        (fun c ->
          let nearest =
            Array.fold_left
              (fun acc got -> Float.min acc (Geometry.Vec.dist got c))
              infinity result.Privcluster.Kmeans_sa.centers
          in
          (* 0.25 is far below the 0.6 planted separation, so the three
             matches are necessarily distinct private centers. *)
          check_true
            (Printf.sprintf "true center matched within 0.25 (got %.3f)" nearest)
            (nearest < 0.25))
        truth

let suite =
  [
    case "lloyd recovers planted centers" test_lloyd_recovers_centers;
    case "lloyd improves inertia with k" test_lloyd_improves_inertia;
    case "assign" test_assign;
    case "canonical order" test_canonical_order;
    case "flatten roundtrip" test_flatten_roundtrip;
    case "lloyd validation" test_lloyd_validation;
    slow_case "private k-means end to end" test_private_kmeans_end_to_end;
  ]
