let log_src = Logs.Src.create "privcluster.engine" ~doc:"Concurrent private-query engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Upper bounds (ms) of the latency buckets; the last bucket is +inf. *)
let bucket_bounds =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.; 15_000.; 60_000. |]

let n_buckets = Array.length bucket_bounds + 1

let bucket_of ms =
  let rec find i = if i = Array.length bucket_bounds || ms <= bucket_bounds.(i) then i else find (i + 1) in
  find 0

type kind_stats = {
  by_status : (string, int) Hashtbl.t;
  hist : int array;
  mutable count : int;
  mutable sum_ms : float;
  mutable min_ms : float;
  mutable max_ms : float;
}

type t = {
  mutex : Mutex.t;
  kinds : (string, kind_stats) Hashtbl.t;
  counters : (string, int) Hashtbl.t;
}

let create () =
  { mutex = Mutex.create (); kinds = Hashtbl.create 8; counters = Hashtbl.create 8 }

let incr t name =
  Mutex.lock t.mutex;
  Hashtbl.replace t.counters name (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters name));
  Mutex.unlock t.mutex

let counter t name =
  Mutex.lock t.mutex;
  let v = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
  Mutex.unlock t.mutex;
  v

let counters t =
  Mutex.lock t.mutex;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters [] in
  Mutex.unlock t.mutex;
  List.sort compare l

let stats_for t kind =
  match Hashtbl.find_opt t.kinds kind with
  | Some s -> s
  | None ->
      let s =
        {
          by_status = Hashtbl.create 4;
          hist = Array.make n_buckets 0;
          count = 0;
          sum_ms = 0.;
          min_ms = Float.infinity;
          max_ms = Float.neg_infinity;
        }
      in
      Hashtbl.replace t.kinds kind s;
      s

let record t ~kind ~status ~latency_ms =
  Mutex.lock t.mutex;
  let s = stats_for t kind in
  Hashtbl.replace s.by_status status
    (1 + Option.value ~default:0 (Hashtbl.find_opt s.by_status status));
  let b = bucket_of latency_ms in
  s.hist.(b) <- s.hist.(b) + 1;
  s.count <- s.count + 1;
  s.sum_ms <- s.sum_ms +. latency_ms;
  s.min_ms <- Float.min s.min_ms latency_ms;
  s.max_ms <- Float.max s.max_ms latency_ms;
  Mutex.unlock t.mutex;
  Log.debug (fun m -> m "job kind=%s status=%s latency=%.2fms" kind status latency_ms)

let fold t f init =
  Mutex.lock t.mutex;
  let r = Hashtbl.fold f t.kinds init in
  Mutex.unlock t.mutex;
  r

let total t = fold t (fun _ s acc -> acc + s.count) 0

let count t ?kind ?status () =
  fold t
    (fun k s acc ->
      if kind <> None && kind <> Some k then acc
      else
        match status with
        | None -> acc + s.count
        | Some st -> acc + Option.value ~default:0 (Hashtbl.find_opt s.by_status st))
    0

(* Quantile by linear interpolation inside the bucket holding rank q·count.
   The open-ended last bucket interpolates toward the observed max. *)
let quantile_of_hist s ~q =
  if s.count = 0 then Float.nan
  else begin
    let target = q *. float_of_int s.count in
    let rec scan b acc =
      if b = n_buckets - 1 then b
      else
        let acc' = acc + s.hist.(b) in
        if float_of_int acc' >= target then b else scan (b + 1) acc'
    in
    let b = scan 0 0 in
    let lo = if b = 0 then 0. else bucket_bounds.(b - 1) in
    let hi = if b = Array.length bucket_bounds then Float.max s.max_ms lo else bucket_bounds.(b) in
    let below = ref 0 in
    for i = 0 to b - 1 do
      below := !below + s.hist.(i)
    done;
    let in_bucket = s.hist.(b) in
    if in_bucket = 0 then lo
    else
      let frac = (target -. float_of_int !below) /. float_of_int in_bucket in
      lo +. (Float.max 0. (Float.min 1. frac) *. (hi -. lo))
  end

let quantile_of_buckets ?(max_ms = bucket_bounds.(Array.length bucket_bounds - 1))
    ~buckets ~observations ~q () =
  let hist = Array.make n_buckets 0 in
  Array.iteri (fun i c -> if i < n_buckets then hist.(i) <- c) buckets;
  quantile_of_hist
    {
      by_status = Hashtbl.create 1;
      hist;
      count = observations;
      sum_ms = 0.;
      min_ms = 0.;
      max_ms;
    }
    ~q

let quantile_ms t ~kind ~q =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.kinds kind with
    | None -> Float.nan
    | Some s -> quantile_of_hist s ~q
  in
  Mutex.unlock t.mutex;
  r

type export_stats = {
  kind : string;
  statuses : (string * int) list;
  buckets : int array;
  observations : int;
  total_ms : float;
}

let bucket_upper_bounds = Array.copy bucket_bounds

let export t =
  fold t
    (fun kind s acc ->
      {
        kind;
        statuses =
          Hashtbl.fold (fun st c acc -> (st, c) :: acc) s.by_status [] |> List.sort compare;
        buckets = Array.copy s.hist;
        observations = s.count;
        total_ms = s.sum_ms;
      }
      :: acc)
    []
  |> List.sort (fun a b -> compare a.kind b.kind)

let kind_json kind s =
  let statuses =
    Hashtbl.fold (fun st c acc -> (st, Json.Int c) :: acc) s.by_status []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let buckets =
    Json.List
      (List.init n_buckets (fun i ->
           let le =
             if i = Array.length bucket_bounds then Json.Null else Json.Float bucket_bounds.(i)
           in
           Json.Obj [ ("le_ms", le); ("count", Json.Int s.hist.(i)) ]))
  in
  ( kind,
    Json.Obj
      [
        ("count", Json.Int s.count);
        ("by_status", Json.Obj statuses);
        ("min_ms", Json.Float (if s.count = 0 then Float.nan else s.min_ms));
        ("mean_ms", Json.Float (if s.count = 0 then Float.nan else s.sum_ms /. float_of_int s.count));
        ("max_ms", Json.Float (if s.count = 0 then Float.nan else s.max_ms));
        ("p50_ms", Json.Float (quantile_of_hist s ~q:0.5));
        ("p90_ms", Json.Float (quantile_of_hist s ~q:0.9));
        ("p99_ms", Json.Float (quantile_of_hist s ~q:0.99));
        ("latency_buckets", buckets);
      ] )

let to_json t =
  let kinds =
    fold t (fun k s acc -> kind_json k s :: acc) []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Json.Obj
    [
      ("total_jobs", Json.Int (total t));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("kinds", Json.Obj kinds);
    ]

let pp_summary ppf t =
  let rows =
    fold t (fun k s acc -> (k, s) :: acc) [] |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (k, s) ->
      let st name = Option.value ~default:0 (Hashtbl.find_opt s.by_status name) in
      Format.fprintf ppf
        "%s: %d jobs (ok %d, refused %d, timeout %d, failed %d, degraded %d) p50 %.1fms p99 %.1fms@."
        k s.count (st "ok") (st "refused") (st "timeout") (st "failed") (st "degraded")
        (quantile_of_hist s ~q:0.5) (quantile_of_hist s ~q:0.99))
    rows;
  match counters t with
  | [] -> ()
  | cs ->
      Format.fprintf ppf "counters: %s@."
        (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) cs))
