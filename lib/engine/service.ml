module Log = (val Logs.src_log Telemetry.log_src : Logs.LOG)

type t = {
  profile : Privcluster.Profile.t;
  domains : int;
  seed : int;
  retries : int;
  backoff_s : float;
  faults : Faults.t;
  base_rng : Prim.Rng.t;  (* never drawn from; only [Rng.derive]d per job *)
  registry : Registry.t;
  telemetry : Telemetry.t;
}

let create ?(profile = Privcluster.Profile.practical) ?domains ?(seed = 1) ?(retries = 2)
    ?(backoff_s = 1e-3) ?faults () =
  let domains =
    max 1 (match domains with Some d -> d | None -> Pool.recommended_domains ())
  in
  let faults = match faults with Some f -> f | None -> Faults.of_env () in
  {
    profile;
    domains;
    seed;
    retries = max 0 retries;
    backoff_s;
    faults;
    base_rng = Prim.Rng.create ~seed ();
    registry = Registry.create ();
    telemetry = Telemetry.create ();
  }

let registry t = t.registry
let telemetry t = t.telemetry
let domains t = t.domains
let seed t = t.seed
let retries t = t.retries
let faults t = t.faults

let register t ~name ~grid ?mode ~budget ?dense_threshold points =
  (* The dense-index rows are independent, so building them on the
     service's worker-domain count changes nothing but wall-clock. *)
  Registry.register t.registry ~name ~grid ?mode ~budget ?dense_threshold
    ~index_domains:t.domains points

let target_of spec dataset =
  match spec.Job.kind with
  | Job.One_cluster { t_fraction } | Job.K_cluster { t_fraction; _ } ->
      max 1 (int_of_float (ceil (t_fraction *. float_of_int (Registry.n dataset))))
  | Job.Quantile _ -> 1

(* One admitted job, on a worker domain.  Everything read from [dataset] is
   immutable after registration except the r_opt-bounds cache, which locks
   internally. *)
let execute t dataset rng (spec : Job.spec) : Job.status =
  let grid = Registry.grid dataset in
  let ps = Registry.pointset dataset in
  match spec.Job.kind with
  | Job.One_cluster _ -> (
      let target = target_of spec dataset in
      match
        Privcluster.One_cluster.run_indexed rng t.profile ~grid ~eps:spec.Job.eps
          ~delta:spec.Job.delta ~beta:spec.Job.beta ~t:target (Registry.index dataset)
      with
      | Ok r ->
          let center = r.Privcluster.One_cluster.center in
          let radius = r.Privcluster.One_cluster.radius in
          let covered = Geometry.Pointset.ball_count ps ~center ~radius in
          let _, r_hi = Registry.r_opt_bounds dataset ~t:target in
          Job.Completed
            (Job.Cluster
               {
                 ball = { Job.center; radius; covered };
                 t = target;
                 ratio_vs_hi = (if r_hi > 0. then radius /. r_hi else Float.infinity);
                 delta_bound = r.Privcluster.One_cluster.delta_bound;
               })
      | Error f ->
          Job.Solver_failed (Format.asprintf "%a" Privcluster.One_cluster.pp_failure f))
  | Job.K_cluster { k; t_fraction } ->
      let r =
        (* Zero-copy: peeling inside run_ps produces index views over the
           registry's flat storage. *)
        Privcluster.K_cluster.run_ps rng t.profile ~grid ~eps:spec.Job.eps
          ~delta:spec.Job.delta ~beta:spec.Job.beta ~k ~t_fraction ps
      in
      let balls =
        List.map
          (fun (b : Privcluster.K_cluster.ball) ->
            {
              Job.center = b.Privcluster.K_cluster.center;
              radius = b.Privcluster.K_cluster.radius;
              covered =
                Geometry.Pointset.ball_count ps ~center:b.Privcluster.K_cluster.center
                  ~radius:b.Privcluster.K_cluster.radius;
            })
          r.Privcluster.K_cluster.balls
      in
      Job.Completed
        (Job.Clusters
           {
             balls;
             uncovered = r.Privcluster.K_cluster.uncovered;
             failures = r.Privcluster.K_cluster.failures;
           })
  | Job.Quantile { axis; q } ->
      let d = Registry.dim dataset in
      if axis < 0 || axis >= d then
        Job.Solver_failed (Printf.sprintf "axis %d out of range for dimension %d" axis d)
      else
        let values = Geometry.Pointset.coords_axis ps axis in
        let grid1 =
          Geometry.Grid.create ~axis_size:(Geometry.Grid.axis_size grid) ~dim:1
        in
        let res =
          Privcluster.Quantile.quantile rng ~profile:t.profile ~grid:grid1 ~eps:spec.Job.eps ~q
            values
        in
        Job.Completed
          (Job.Quantile_value
             {
               value = res.Privcluster.Quantile.value;
               target_rank = res.Privcluster.Quantile.target_rank;
             })

(* Why a failed-then-degraded job names its original failure: the reason
   string is derived from the job's public status, never from drawn noise. *)
let degrade_reason = function
  | Job.Timed_out { elapsed_ms } ->
      Printf.sprintf "deadline exceeded after %.0f ms" elapsed_ms
  | Job.Solver_failed msg -> msg
  | _ -> "unknown"

(* The GoodRadius-only fallback, run on the coordinator after the pool has
   drained (the accountant is not thread-safe, and commit/release must be
   interleaved with nothing).  Its randomness is a dedicated sub-stream of
   the job's stream — deterministic in (seed, submission index) and disjoint
   from the main attempt's draws. *)
let run_fallback t dataset ~base_rng ~stream (spec : Job.spec) cost =
  let rng = Prim.Rng.derive (Prim.Rng.derive base_rng ~stream) ~stream:1 in
  let target = target_of spec dataset in
  let r =
    Privcluster.Good_radius.run rng t.profile ~grid:(Registry.grid dataset)
      ~eps:cost.Prim.Dp.eps ~delta:cost.Prim.Dp.delta ~beta:spec.Job.beta ~t:target
      (Registry.index dataset)
  in
  Job.Radius
    {
      radius = r.Privcluster.Good_radius.radius;
      t = target;
      delta_bound = r.Privcluster.Good_radius.delta_bound;
    }

type admission =
  | Refused_at_admission of string
  | Admitted of Accountant.reservation option  (* the fallback reservation, if held *)

let charge_of (p : Prim.Dp.params) =
  Obs.Span.charge ~eps:p.Prim.Dp.eps ~delta:p.Prim.Dp.delta ()

(* One [cat="budget"] instant per ledger operation.  Attribution counts
   [charge] and [commit] — exactly the operations that create
   [Accountant.entries] — so the event stream and the ledger reconcile
   term by term. *)
let budget_event op ~label cost =
  Obs.Span.event ~cat:"budget" ~label ~charge:(charge_of cost) op

let run_batch ?domains ?retries ?faults ?seed t ~dataset specs =
  let domains = max 1 (Option.value ~default:t.domains domains) in
  let retries = max 0 (Option.value ~default:t.retries retries) in
  let faults = Option.value ~default:t.faults faults in
  let base_rng, seed =
    match seed with
    | None -> (t.base_rng, t.seed)
    | Some s -> (Prim.Rng.create ~seed:s (), s)
  in
  let accountant = Registry.accountant dataset in
  (* Root span for the whole batch (handle API: it brackets all three
     phases).  Coordinator-side phase spans nest under it implicitly;
     worker-side job spans are stitched to it by id. *)
  let batch =
    Obs.Span.start ~cat:"batch"
      ~attrs:(fun () ->
        [
          ("dataset", Obs.Span.S (Registry.name dataset));
          ("jobs", Obs.Span.I (List.length specs));
          ("domains", Obs.Span.I domains);
          ("seed", Obs.Span.I seed);
          ("retries", Obs.Span.I retries);
        ])
      "service.batch"
  in
  let batch_id = Obs.Span.h_id batch in
  (* Phase 1 — admission, in submission order, before anything runs.  A job
     with a fallback also reserves the fallback's charge now, so degradation
     can never be refused mid-batch; if the reservation alone does not fit,
     the job still runs — it just has no fallback (logged below). *)
  let admitted =
    Obs.Span.with_span ~cat:"phase" ?parent:batch_id "service.admission" @@ fun () ->
    List.map
      (fun (spec : Job.spec) ->
        match Accountant.charge accountant ~label:spec.Job.id (Job.cost spec) with
        | Error refusal ->
            budget_event "refuse" ~label:spec.Job.id (Job.cost spec);
            Refused_at_admission (Accountant.refusal_message refusal)
        | Ok () -> (
            budget_event "charge" ~label:spec.Job.id (Job.cost spec);
            match Job.fallback_cost spec with
            | None -> Admitted None
            | Some c -> (
                match
                  Accountant.reserve accountant ~label:(spec.Job.id ^ ":fallback") c
                with
                | Ok resv ->
                    budget_event "reserve" ~label:(spec.Job.id ^ ":fallback") c;
                    Admitted (Some resv)
                | Error _ ->
                    budget_event "refuse" ~label:(spec.Job.id ^ ":fallback") c;
                    Log.warn (fun m ->
                        m "job %s: no budget headroom for its fallback — degradation disabled"
                          spec.Job.id);
                    Admitted None)))
      specs
  in
  let n_admitted =
    List.length (List.filter (function Admitted _ -> true | _ -> false) admitted)
  in
  Log.info (fun m ->
      m "batch start: dataset=%s jobs=%d admitted=%d domains=%d seed=%d retries=%d faults=%s"
        (Registry.name dataset) (List.length specs) n_admitted domains seed retries
        (Faults.to_string faults));
  (* Phase 2 — execution.  Stream index = submission index (refusals
     included), so admitting a different prefix never reshuffles the
     randomness of later jobs; and every retry attempt re-derives the same
     stream, so a crash-before-output replay is bit-identical and free. *)
  let tasks =
    List.mapi (fun i a -> (i, a)) admitted
    |> List.filter_map (fun (i, a) ->
           match a with
           | Admitted _ ->
               let spec = List.nth specs i in
               Some (Pool.task ?deadline_s:spec.Job.deadline_s (i, spec))
           | Refused_at_admission _ -> None)
    |> Array.of_list
  in
  let on_event = function
    | Pool.Task_retry _ -> Telemetry.incr t.telemetry "retries"
    | Pool.Worker_restart -> Telemetry.incr t.telemetry "worker_restarts"
  in
  let outcomes =
    Pool.run ~retries ~backoff_s:t.backoff_s ~on_event ?trace_parent:batch_id ~domains
      ~f:(fun ~index:_ ~attempt (stream, spec) ->
        (* Per-job root span, parented to the batch span across the domain
           boundary.  The label keys budget attribution; stream and attempt
           let the reconciler collapse bit-identical retry replays. *)
        Obs.Span.with_span ~cat:"job" ?parent:batch_id
          ~attrs:(fun () ->
            [
              ("id", Obs.Span.S spec.Job.id);
              ("stream", Obs.Span.I stream);
              ("attempt", Obs.Span.I (attempt + 1));
            ])
          (Job.kind_name spec.Job.kind)
        @@ fun () ->
        Obs.Span.set_label spec.Job.id;
        let rng = Prim.Rng.derive base_rng ~stream in
        (* Faults are armed before any randomness is drawn, so an injected
           crash or kill is always a crash *before output*. *)
        Faults.arm faults ~index:stream ~attempt;
        let t0 = Unix.gettimeofday () in
        let status = execute t dataset rng spec in
        (status, (Unix.gettimeofday () -. t0) *. 1000., attempt + 1))
      tasks
  in
  let by_index = Hashtbl.create (Array.length tasks) in
  Array.iteri
    (fun j outcome ->
      let i, _ = tasks.(j).Pool.payload in
      Hashtbl.replace by_index i outcome)
    outcomes;
  (* Phase 3 — settlement, sequential, in submission order: map outcomes to
     results, run fallbacks for jobs that could not complete, and settle
     every reservation (commit on degrade, release otherwise). *)
  let release_resv (spec : Job.spec) resv =
    Option.iter
      (fun r ->
        Accountant.release accountant r;
        Obs.Span.event ~cat:"budget" ~label:(spec.Job.id ^ ":fallback") "release")
      resv
  in
  let settle i (spec : Job.spec) resv (status, latency_ms, attempts) =
    let degrade () =
      match (resv, Job.fallback_cost spec) with
      | Some resv, Some cost -> (
          let reason = degrade_reason status in
          (* The fallback's execution span is a [cat="job"] root of its
             own, labelled like its ledger entry; on failure the label is
             left unset so the aborted subtree joins no attribution line
             (its reservation is released, not spent). *)
          let h =
            Obs.Span.start ~cat:"job" ?parent:batch_id
              ~attrs:(fun () ->
                [
                  ("id", Obs.Span.S spec.Job.id);
                  ("stream", Obs.Span.I i);
                  ("fallback", Obs.Span.B true);
                  ("reason", Obs.Span.S reason);
                ])
              "good_radius_fallback"
          in
          match run_fallback t dataset ~base_rng ~stream:i spec cost with
          | output ->
              Obs.Span.h_set_label h (spec.Job.id ^ ":fallback");
              Obs.Span.finish h;
              Accountant.commit accountant resv;
              budget_event "commit" ~label:(spec.Job.id ^ ":fallback") cost;
              Telemetry.incr t.telemetry "degraded";
              Some (Job.Degraded { output; reason })
          | exception exn ->
              Obs.Span.h_set_attr h "error" (Obs.Span.S (Printexc.to_string exn));
              Obs.Span.finish h;
              Log.warn (fun m ->
                  m "job %s: fallback itself failed (%s) — keeping original status" spec.Job.id
                    (Printexc.to_string exn));
              Accountant.release accountant resv;
              Obs.Span.event ~cat:"budget" ~label:(spec.Job.id ^ ":fallback") "release";
              None)
      | _ -> None
    in
    match status with
    | Job.Completed _ | Job.Refused _ ->
        release_resv spec resv;
        { Job.spec; status; latency_ms; attempts }
    | Job.Timed_out _ | Job.Solver_failed _ -> (
        match degrade () with
        | Some status -> { Job.spec; status; latency_ms; attempts }
        | None ->
            release_resv spec resv;
            { Job.spec; status; latency_ms; attempts })
    | Job.Degraded _ ->
        (* execute never produces Degraded; keep the match exhaustive. *)
        release_resv spec resv;
        { Job.spec; status; latency_ms; attempts }
  in
  let results =
    Obs.Span.with_span ~cat:"phase" ?parent:batch_id "service.settlement" @@ fun () ->
    List.mapi
      (fun i (spec : Job.spec) ->
        match List.nth admitted i with
        | Refused_at_admission msg ->
            { Job.spec; status = Job.Refused msg; latency_ms = 0.; attempts = 0 }
        | Admitted resv -> (
            match Hashtbl.find by_index i with
            | Pool.Done (status, ms, attempts) -> settle i spec resv (status, ms, attempts)
            | Pool.Timed_out { elapsed_ms } ->
                settle i spec resv (Job.Timed_out { elapsed_ms }, elapsed_ms, 0)
            | Pool.Failed msg -> settle i spec resv (Job.Solver_failed msg, 0., retries + 1)))
      specs
  in
  List.iter
    (fun (r : Job.result) ->
      Telemetry.record t.telemetry ~kind:(Job.kind_name r.Job.spec.Job.kind)
        ~status:(Job.status_name r.Job.status) ~latency_ms:r.Job.latency_ms)
    results;
  let count st =
    List.length (List.filter (fun r -> Job.status_name r.Job.status = st) results)
  in
  Log.info (fun m ->
      m "batch done: dataset=%s ok=%d refused=%d timeout=%d failed=%d degraded=%d retries=%d restarts=%d"
        (Registry.name dataset) (count "ok") (count "refused") (count "timeout") (count "failed")
        (count "degraded")
        (Telemetry.counter t.telemetry "retries")
        (Telemetry.counter t.telemetry "worker_restarts"));
  Obs.Span.finish batch;
  results

let find_dataset t name =
  match Registry.find t.registry name with
  | Some d -> Ok d
  | None ->
      Error
        (match Registry.names t.registry with
        | [] -> Printf.sprintf "unknown dataset %S: no datasets are registered" name
        | names ->
            Printf.sprintf "unknown dataset %S: registered datasets are %s" name
              (String.concat ", " (List.map (Printf.sprintf "%S") names)))

let run_batch_named ?domains ?retries ?faults ?seed t ~dataset specs =
  match find_dataset t dataset with
  | Error _ as e -> e
  | Ok dataset -> Ok (run_batch ?domains ?retries ?faults ?seed t ~dataset specs)

let ledger ~dataset =
  List.map
    (fun (label, p) -> (label, charge_of p))
    (Accountant.entries (Registry.accountant dataset))

let attribution ~dataset () =
  Obs.Attribution.reconcile ~ledger:(ledger ~dataset) (Obs.Span.spans ())

let report_json t ~dataset results =
  Json.Obj
    [
      ("dataset", Registry.to_json dataset);
      ("jobs", Json.List (List.map Job.result_to_json results));
      ("telemetry", Telemetry.to_json t.telemetry);
    ]
