(* Stability-based histogram (Theorem 2.5). *)

open Testutil

let test_count_by () =
  let data = [| "a"; "b"; "a"; "c"; "a"; "b" |] in
  let cells = Prim.Stability_hist.count_by ~key:(fun x -> x) data in
  let find k = List.assoc k cells in
  check_int "a count" 3 (find "a");
  check_int "b count" 2 (find "b");
  check_int "c count" 1 (find "c");
  check_int "only non-empty cells" 3 (List.length cells)

let qcheck_count_by_total =
  qcheck "count_by totals to n" QCheck2.Gen.(array_size (int_bound 200) (int_bound 10))
    (fun data ->
      let cells = Prim.Stability_hist.count_by ~key:(fun x -> x mod 3) data in
      List.fold_left (fun acc (_, c) -> acc + c) 0 cells = Array.length data)

let test_select_heavy () =
  let r = rng () in
  let data = Array.init 500 (fun i -> if i < 400 then 7 else i) in
  match Prim.Stability_hist.select_by r ~eps:1.0 ~delta:1e-6 ~key:(fun x -> x) data with
  | Some cell ->
      check_int "heavy key found" 7 cell.Prim.Stability_hist.key;
      check_int "true count carried" 400 cell.Prim.Stability_hist.count
  | None -> Alcotest.fail "heavy cell not released"

let test_select_spread_returns_none () =
  let r = rng () in
  (* Every key unique: max count 1, far below the release threshold. *)
  let data = Array.init 500 (fun i -> i) in
  let released = ref 0 in
  for _ = 1 to 50 do
    match Prim.Stability_hist.select_by r ~eps:1.0 ~delta:1e-6 ~key:(fun x -> x) data with
    | Some _ -> incr released
    | None -> ()
  done;
  check_true "spread data essentially never released" (!released <= 1)

let test_release_threshold_formula () =
  check_float ~tol:1e-9 "threshold" (1. +. (2. *. log (2. /. 1e-6)))
    (Prim.Stability_hist.release_threshold ~eps:1.0 ~delta:1e-6)

let test_heavy_cells_sorted () =
  let r = rng () in
  let data = Array.init 900 (fun i -> if i < 500 then 1 else if i < 800 then 2 else i) in
  let cells =
    Prim.Stability_hist.heavy_cells r ~eps:1.0 ~delta:1e-6
      (Prim.Stability_hist.count_by ~key:(fun x -> x) data)
  in
  check_true "at least the two heavy cells" (List.length cells >= 2);
  (match cells with
  | a :: b :: _ ->
      check_true "sorted by noisy count"
        (a.Prim.Stability_hist.noisy_count >= b.Prim.Stability_hist.noisy_count);
      check_int "heaviest is key 1" 1 a.Prim.Stability_hist.key
  | _ -> Alcotest.fail "unexpected");
  List.iter
    (fun c ->
      check_true "all released clear threshold"
        (c.Prim.Stability_hist.noisy_count
        >= Prim.Stability_hist.release_threshold ~eps:1.0 ~delta:1e-6))
    cells

let test_utility_theorem_25 () =
  (* With T above the requirement, the returned cell must hold at least
     T − utility_loss elements at rate >= 1 − beta. *)
  let r = rng () in
  let eps = 1.0 and delta = 1e-6 and beta = 0.1 and n = 400 in
  let req = Prim.Stability_hist.utility_requirement ~eps ~delta ~n ~beta in
  let loss = Prim.Stability_hist.utility_loss ~eps ~n ~beta in
  let heavy = int_of_float req + 10 in
  let data = Array.init n (fun i -> if i < heavy then 0 else i) in
  let failures = ref 0 in
  for _ = 1 to 200 do
    match Prim.Stability_hist.select_by r ~eps ~delta ~key:(fun x -> x) data with
    | Some cell when float_of_int cell.Prim.Stability_hist.count >= float_of_int heavy -. loss -> ()
    | _ -> incr failures
  done;
  check_true "theorem 2.5 rate" (float_of_int !failures /. 200. <= beta)

let test_polymorphic_keys () =
  let r = rng () in
  (* int-array keys (the box keys of GoodCenter) hash structurally. *)
  let data = Array.init 300 (fun i -> if i < 200 then [| 1; 2 |] else [| i; i |]) in
  match Prim.Stability_hist.select_by r ~eps:1.0 ~delta:1e-6 ~key:(fun x -> x) data with
  | Some cell -> check_true "array key matched" (cell.Prim.Stability_hist.key = [| 1; 2 |])
  | None -> Alcotest.fail "heavy array key not found"

let suite =
  [
    case "count_by" test_count_by;
    qcheck_count_by_total;
    case "select heavy" test_select_heavy;
    case "select on spread data" test_select_spread_returns_none;
    case "release threshold formula" test_release_threshold_formula;
    case "heavy cells sorted" test_heavy_cells_sorted;
    case "theorem 2.5 utility" test_utility_theorem_25;
    case "polymorphic (array) keys" test_polymorphic_keys;
  ]
