(* Local vs central: the price of the local model for 1-cluster.

   Run with:  dune exec examples/local_vs_central.exe

   The scenario: the same planted 35% cluster at three database sizes,
   located twice under the same eps = 2 —

   - centrally, by the paper's GoodRadius/GoodCenter pipeline (the curator
     sees the raw points and pays O(1/eps) count noise), and
   - locally, by k-ary randomized response over a ladder of dyadic grids
     (each user sends one eps-LDP report; the server pays Omega(sqrt n/eps)
     count noise per cell).

   At n = 2000 the local protocol refuses: every scale's certified loss
   reaches t, so no released ball could promise any coverage.  At n = 8000
   only the whole-domain scale qualifies.  At n = 32000 the sqrt n has
   caught up and a block a few planted radii wide clears its threshold —
   the crossover that EXPERIMENTS.md (E1) tabulates. *)

let () =
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let eps = 2.0 in
  List.iter
    (fun n ->
      let rng = Prim.Rng.create ~seed:(2017 + n) () in
      let w =
        Workload.Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.35 ~cluster_radius:0.05
      in
      let t = int_of_float (0.8 *. float_of_int w.Workload.Synth.cluster_size) in
      let ps = Geometry.Pointset.create w.Workload.Synth.points in
      Format.printf "@.n = %d, t = %d, planted radius %.4f@." n t
        w.Workload.Synth.cluster_radius;
      (match
         Privcluster.One_cluster.run rng Privcluster.Profile.practical ~grid ~eps ~delta:1e-6
           ~beta:0.1 ~t w.Workload.Synth.points
       with
      | Error f -> Format.printf "  central: %a@." Privcluster.One_cluster.pp_failure f
      | Ok r ->
          let center = r.Privcluster.One_cluster.center in
          let radius = r.Privcluster.One_cluster.radius in
          Format.printf "  central: radius %.4f, covers %d@." radius
            (Geometry.Pointset.ball_count ps ~center ~radius));
      match Privcluster.Local_cluster.run rng ~grid ~eps ~beta:0.1 ~t ps with
      | Error f -> Format.printf "  local:   %a@." Privcluster.Local_cluster.pp_failure f
      | Ok r ->
          let center = r.Privcluster.Local_cluster.center in
          let radius = r.Privcluster.Local_cluster.radius in
          let s = r.Privcluster.Local_cluster.scales.(r.Privcluster.Local_cluster.scale_index) in
          Format.printf "  local:   radius %.4f (scale 1/%d), covers %d, delta <= %.0f@." radius
            s.Privcluster.Local_cluster.cells_per_axis
            (Geometry.Pointset.ball_count ps ~center ~radius)
            r.Privcluster.Local_cluster.delta_bound)
    [ 2_000; 8_000; 32_000 ]
