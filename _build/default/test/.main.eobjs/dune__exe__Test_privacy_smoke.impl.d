test/test_privacy_smoke.ml: Array Float Prim Printf Testutil
