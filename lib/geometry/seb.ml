type ball = { center : Vec.t; radius : float }

let contains b p = Vec.dist p b.center <= b.radius +. 1e-12

let count_inside b points =
  Array.fold_left (fun acc p -> if contains b p then acc + 1 else acc) 0 points

let exact_1d coords ~t =
  let n = Array.length coords in
  if t < 1 || t > n then invalid_arg "Seb.exact_1d: t must be in [1, n]";
  let sorted = Array.copy coords in
  Array.sort Float.compare sorted;
  let best = ref (sorted.(t - 1) -. sorted.(0)) and best_i = ref 0 in
  for i = 1 to n - t do
    let w = sorted.(i + t - 1) -. sorted.(i) in
    if w < !best then begin
      best := w;
      best_i := i
    end
  done;
  { center = [| 0.5 *. (sorted.(!best_i) +. sorted.(!best_i + t - 1)) |]; radius = 0.5 *. !best }

let two_approx ps ~t =
  let n = Pointset.n ps in
  if t < 1 || t > n then invalid_arg "Seb.two_approx: t must be in [1, n]";
  let st = Pointset.storage ps and offs = Pointset.row_offsets ps in
  let d = Pointset.dim ps in
  let best = ref infinity and best_i = ref 0 in
  let dists = Array.make n 0. in
  for i = 0 to n - 1 do
    Kernel.dists_to_rows ~st ~offs ~n ~q:st ~qoff:offs.(i) ~dim:d ~out:dists;
    (* [dists] is refilled next iteration, so the destructive quickselect
       scratch is free; the k-th order statistic equals the sorted read. *)
    let r = Kernel.kth_smallest dists ~len:n ~k:t in
    if r < !best then begin
      best := r;
      best_i := i
    end
  done;
  { center = Pointset.point ps !best_i; radius = !best }

let two_approx_indexed idx ~t =
  let ps = Pointset.index_pointset idx in
  let n = Pointset.n ps in
  if t < 1 || t > n then invalid_arg "Seb.two_approx_indexed: t must be in [1, n]";
  let best = ref infinity and best_i = ref 0 in
  for i = 0 to n - 1 do
    let r = Pointset.kth_neighbor_distance idx ~k:t i in
    if r < !best then begin
      best := r;
      best_i := i
    end
  done;
  { center = Pointset.point ps !best_i; radius = !best }

let farthest_from points c =
  let best = ref 0 and best_d = ref neg_infinity in
  Array.iteri
    (fun i p ->
      let d = Vec.dist_sq p c in
      if d > !best_d then begin
        best_d := d;
        best := i
      end)
    points;
  !best

let min_enclosing_ball ?(iterations = 100) points =
  if Array.length points = 0 then invalid_arg "Seb.min_enclosing_ball: empty";
  let c = Vec.copy points.(0) in
  for i = 1 to iterations do
    let p = points.(farthest_from points c) in
    (* c <- c + (p - c)/(i+1) *)
    let step = 1. /. float_of_int (i + 1) in
    for j = 0 to Array.length c - 1 do
      c.(j) <- c.(j) +. (step *. (p.(j) -. c.(j)))
    done
  done;
  let r = Vec.dist points.(farthest_from points c) c in
  { center = c; radius = r }

(* Flat Bădoiu–Clarkson over the rows listed in [offs]; same iteration as
   [min_enclosing_ball] without materializing any point. *)
let farthest_row st offs count d c =
  Kernel.argmax_dist ~st ~offs ~n:count ~q:c ~qoff:0 ~dim:d

let meb_rows ?(iterations = 100) st offs count d =
  let c = Vec.of_row st ~off:offs.(0) ~dim:d in
  for i = 1 to iterations do
    let p_off = offs.(farthest_row st offs count d c) in
    let step = 1. /. float_of_int (i + 1) in
    for j = 0 to d - 1 do
      c.(j) <- c.(j) +. (step *. (st.(p_off + j) -. c.(j)))
    done
  done;
  let r = Vec.dist_to_row st ~off:offs.(farthest_row st offs count d c) ~dim:d c in
  { center = c; radius = r }

(* Row offsets of the [t] points nearest [c].  The comparator only looks at
   the distances, so the sort permutation — and hence the selected rows —
   match the historical boxed implementation exactly. *)
let t_nearest_offs st offs count d ~t c =
  let with_d =
    Array.init count (fun j -> (Vec.dist_sq_to_row st ~off:offs.(j) ~dim:d c, offs.(j)))
  in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) with_d;
  Array.init t (fun i -> snd with_d.(i))

let t_ball_heuristic ?(iterations = 8) ps ~t =
  let start = two_approx ps ~t in
  let st = Pointset.storage ps and offs = Pointset.row_offsets ps in
  let count = Pointset.n ps and d = Pointset.dim ps in
  let best = ref start in
  let c = ref start.center in
  for _ = 1 to iterations do
    let near = t_nearest_offs st offs count d ~t !c in
    let meb = meb_rows st near t d in
    (* The MEB of the t nearest points always contains t points, so it is a
       feasible solution; keep it if it improves. *)
    if meb.radius < !best.radius then best := meb;
    c := meb.center
  done;
  !best
