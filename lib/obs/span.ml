type attr = S of string | I of int | F of float | B of bool

type charge = { eps : float; delta : float; rho : float }

let charge ?(rho = 0.) ~eps ~delta () = { eps; delta; rho }
let zero_charge = { eps = 0.; delta = 0.; rho = 0. }

let add_charges a b =
  { eps = a.eps +. b.eps; delta = a.delta +. b.delta; rho = a.rho +. b.rho }

type id = int

type span = {
  id : id;
  parent : id option;
  tid : int;
  name : string;
  cat : string;
  start_ns : int64;
  mutable dur_ns : int64;
  mutable attrs : (string * attr) list;
  mutable label : string option;
  mutable span_charge : charge option;
}

(* The whole hot path when tracing is off is the load of this flag. *)
let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let next_id = Atomic.make 1

(* Completed spans.  Workers push under the mutex; pushes only happen when
   tracing is on, so the contention cost is confined to traced runs. *)
let mutex = Mutex.create ()
let completed : span list ref = ref []

let push sp =
  Mutex.lock mutex;
  completed := sp :: !completed;
  Mutex.unlock mutex

let reset () =
  Mutex.lock mutex;
  completed := [];
  Mutex.unlock mutex

let spans () =
  Mutex.lock mutex;
  let l = !completed in
  Mutex.unlock mutex;
  List.sort
    (fun a b ->
      let c = Int64.compare a.start_ns b.start_ns in
      if c <> 0 then c else compare a.id b.id)
    l

let count () =
  Mutex.lock mutex;
  let n = List.length !completed in
  Mutex.unlock mutex;
  n

(* Per-domain stack of open spans; nesting within a domain is implicit. *)
let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let make_span ?cat ?parent ?attrs name =
  let stack = Domain.DLS.get stack_key in
  let parent =
    match parent with
    | Some _ as p -> p
    | None -> ( match !stack with sp :: _ -> Some sp.id | [] -> None)
  in
  let sp =
    {
      id = Atomic.fetch_and_add next_id 1;
      parent;
      tid = (Domain.self () :> int);
      name;
      cat = Option.value ~default:"span" cat;
      start_ns = Clock.now_ns ();
      dur_ns = 0L;
      attrs = (match attrs with None -> [] | Some f -> f ());
      label = None;
      span_charge = None;
    }
  in
  stack := sp :: !stack;
  sp

let close_span sp =
  let stack = Domain.DLS.get stack_key in
  (match !stack with
  | top :: rest when top == sp -> stack := rest
  | _ ->
      (* Unbalanced start/finish: drop down to (and including) [sp] if it
         is on the stack at all, so one misuse cannot wedge the domain. *)
      let rec drop = function
        | top :: rest when top == sp -> rest
        | _ :: rest -> drop rest
        | [] -> !stack
      in
      stack := drop !stack);
  sp.dur_ns <- Int64.sub (Clock.now_ns ()) sp.start_ns;
  push sp

let with_span ?cat ?parent ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let sp = make_span ?cat ?parent ?attrs name in
    match f () with
    | v ->
        close_span sp;
        v
    | exception e ->
        sp.attrs <- ("error", S (Printexc.to_string e)) :: sp.attrs;
        close_span sp;
        raise e
  end

let with_charged ?(cat = "mech") ?attrs ~eps ~delta name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let sp = make_span ~cat ?attrs name in
    sp.span_charge <- Some { eps; delta; rho = 0. };
    match f () with
    | v ->
        close_span sp;
        v
    | exception e ->
        sp.attrs <- ("error", S (Printexc.to_string e)) :: sp.attrs;
        close_span sp;
        raise e
  end

let event ?(cat = "event") ?parent ?attrs ?label ?charge name =
  if Atomic.get enabled_flag then begin
    let sp = make_span ~cat ?parent ?attrs name in
    sp.label <- label;
    sp.span_charge <- charge;
    close_span sp
  end

let top () =
  if not (Atomic.get enabled_flag) then None
  else match !(Domain.DLS.get stack_key) with sp :: _ -> Some sp | [] -> None

let current () = Option.map (fun sp -> sp.id) (top ())

let set_attr key v =
  match top () with None -> () | Some sp -> sp.attrs <- (key, v) :: sp.attrs

let set_label label =
  match top () with None -> () | Some sp -> sp.label <- Some label

let add_charge_to sp ?(rho = 0.) ~eps ~delta () =
  let c = { eps; delta; rho } in
  sp.span_charge <-
    Some (match sp.span_charge with None -> c | Some prev -> add_charges prev c)

let add_charge ?rho ~eps ~delta () =
  match top () with None -> () | Some sp -> add_charge_to sp ?rho ~eps ~delta ()

(* --- handle API -------------------------------------------------------- *)

type h = span option

let start ?cat ?parent ?attrs name =
  if not (Atomic.get enabled_flag) then None else Some (make_span ?cat ?parent ?attrs name)

let finish = function None -> () | Some sp -> close_span sp
let h_id = Option.map (fun sp -> sp.id)
let h_set_attr h key v = Option.iter (fun sp -> sp.attrs <- (key, v) :: sp.attrs) h
let h_set_label h label = Option.iter (fun sp -> sp.label <- Some label) h

let h_add_charge h ?rho ~eps ~delta () =
  Option.iter (fun sp -> add_charge_to sp ?rho ~eps ~delta ()) h

(* --- tree helpers ------------------------------------------------------ *)

let children all sp = List.filter (fun c -> c.parent = Some sp.id) all

let roots all =
  let ids = Hashtbl.create (List.length all) in
  List.iter (fun sp -> Hashtbl.replace ids sp.id ()) all;
  List.filter
    (fun sp -> match sp.parent with None -> true | Some p -> not (Hashtbl.mem ids p))
    all

let find all id = List.find_opt (fun sp -> sp.id = id) all

let attributed all sp =
  let by_parent = Hashtbl.create (max 16 (List.length all)) in
  List.iter
    (fun c -> match c.parent with Some p -> Hashtbl.add by_parent p c | None -> ())
    all;
  let rec go sp =
    match sp.span_charge with
    | Some c -> c
    | None ->
        List.fold_left (fun acc c -> add_charges acc (go c)) zero_charge
          (Hashtbl.find_all by_parent sp.id)
  in
  go sp

(* Attrs are consed newest-first; the newest binding for a key wins. *)
let attr sp key = List.assoc_opt key sp.attrs
let attr_int sp key = match attr sp key with Some (I i) -> Some i | _ -> None
let attr_string sp key = match attr sp key with Some (S s) -> Some s | _ -> None
let attr_bool sp key = match attr sp key with Some (B b) -> Some b | _ -> None
