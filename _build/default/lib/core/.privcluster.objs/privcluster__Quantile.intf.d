lib/core/quantile.mli: Geometry Prim Profile
