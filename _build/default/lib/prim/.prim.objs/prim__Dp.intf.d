lib/prim/dp.mli: Format
