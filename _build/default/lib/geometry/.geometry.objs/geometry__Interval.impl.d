lib/geometry/interval.ml: Float Prim
