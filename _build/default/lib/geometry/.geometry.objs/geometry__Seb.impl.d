lib/geometry/seb.ml: Array Float Pointset Vec
