type t = { f : int -> float; cache : (int, float) Hashtbl.t; size : int; mutable evals : int }

let create ~size ~f =
  if size < 1 then invalid_arg "Quality.create: size must be >= 1";
  { f; cache = Hashtbl.create 256; size; evals = 0 }

let of_array a = create ~size:(Array.length a) ~f:(Array.get a)
let size t = t.size

let eval t i =
  if i < 0 || i >= t.size then invalid_arg "Quality.eval: index out of range";
  match Hashtbl.find_opt t.cache i with
  | Some v -> v
  | None ->
      let v = t.f i in
      t.evals <- t.evals + 1;
      Hashtbl.add t.cache i v;
      v

let evals t = t.evals

(* Discrete quasi-concavity is equivalent to weak unimodality: non-decreasing
   up to the argmax, non-increasing after it. *)
let is_quasi_concave t =
  let m = ref 0 in
  for i = 1 to t.size - 1 do
    if eval t i > eval t !m then m := i
  done;
  let ok = ref true in
  for i = 1 to !m do
    if eval t i < eval t (i - 1) then ok := false
  done;
  for i = !m + 1 to t.size - 1 do
    if eval t i > eval t (i - 1) then ok := false
  done;
  !ok

let argmax t =
  let m = ref 0 in
  for i = 1 to t.size - 1 do
    if eval t i > eval t !m then m := i
  done;
  !m
