lib/geometry/jl.mli: Prim Vec
