(* Private quantiles via RecConcave. *)

open Testutil

let grid = Geometry.Grid.create ~axis_size:512 ~dim:1

let test_median_accuracy () =
  let r = rng ~seed:3 () in
  let values = Array.init 4000 (fun i -> float_of_int i /. 8000.) in
  (* True median 0.25. *)
  let res = Privcluster.Quantile.median r ~grid ~eps:2.0 values in
  check_in_range "median close" ~lo:0.22 ~hi:0.28 res.Privcluster.Quantile.value;
  check_float "target rank" 2000. res.Privcluster.Quantile.target_rank

let test_extreme_quantiles () =
  let r = rng ~seed:5 () in
  let values = Array.init 3000 (fun _ -> 0.3 +. Prim.Rng.float r 0.4) in
  let q10 = Privcluster.Quantile.quantile r ~grid ~eps:2.0 ~q:0.1 values in
  let q90 = Privcluster.Quantile.quantile r ~grid ~eps:2.0 ~q:0.9 values in
  check_true "order" (q10.Privcluster.Quantile.value <= q90.Privcluster.Quantile.value);
  check_in_range "q10 plausible" ~lo:0.25 ~hi:0.45 q10.Privcluster.Quantile.value;
  check_in_range "q90 plausible" ~lo:0.55 ~hi:0.75 q90.Privcluster.Quantile.value

let test_rank_error_within_bound () =
  let r = rng ~seed:7 () in
  let eps = 1.0 in
  let bound = Privcluster.Quantile.rank_error_bound ~grid ~eps ~beta:0.05 () in
  let violations = ref 0 in
  for _ = 1 to 30 do
    let values = Array.init 3000 (fun _ -> Prim.Rng.float r 1.0) in
    let res = Privcluster.Quantile.quantile r ~grid ~eps ~q:0.5 values in
    let rank =
      Array.fold_left
        (fun acc x -> if x <= res.Privcluster.Quantile.value then acc + 1 else acc)
        0 values
    in
    if Float.abs (float_of_int rank -. res.Privcluster.Quantile.target_rank) > bound then
      incr violations
  done;
  check_true "rank errors within the certified bound" (!violations <= 2)

let test_iqr () =
  let r = rng ~seed:9 () in
  let values = Array.init 4000 (fun _ -> Prim.Rng.float r 1.0) in
  let lo, hi = Privcluster.Quantile.interquartile_range r ~grid ~eps:4.0 values in
  check_in_range "q25" ~lo:0.18 ~hi:0.32 lo;
  check_in_range "q75" ~lo:0.68 ~hi:0.82 hi

let test_validation () =
  let r = rng () in
  let grid2 = Geometry.Grid.create ~axis_size:16 ~dim:2 in
  Alcotest.check_raises "1-D only" (Invalid_argument "Quantile.quantile: grid must be 1-D")
    (fun () -> ignore (Privcluster.Quantile.quantile r ~grid:grid2 ~eps:1. ~q:0.5 [| 0.5 |]));
  Alcotest.check_raises "q range" (Invalid_argument "Quantile.quantile: q must be in [0, 1]")
    (fun () -> ignore (Privcluster.Quantile.quantile r ~grid ~eps:1. ~q:1.5 [| 0.5 |]))

(* --- GUPT baseline --- *)

let test_gupt_end_to_end () =
  let r = rng ~seed:11 () in
  let grid2 = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let truth = [| 0.4; 0.6 |] in
  let data =
    Array.init 20_000 (fun _ ->
        Array.map (fun c -> c +. Prim.Rng.gaussian r ~sigma:0.05 ()) truth)
  in
  let res = Baselines.Gupt.run r ~grid:grid2 ~eps:1.0 ~delta:1e-6 ~m:10 ~f:Geometry.Vec.mean data in
  check_int "blocks" 2000 res.Baselines.Gupt.blocks;
  check_true "estimate near truth" (Geometry.Vec.dist res.Baselines.Gupt.estimate truth < 0.05)

let test_gupt_validation () =
  let r = rng () in
  let grid2 = Geometry.Grid.create ~axis_size:16 ~dim:1 in
  Alcotest.check_raises "two blocks" (Invalid_argument "Gupt.run: need at least two blocks")
    (fun () ->
      ignore
        (Baselines.Gupt.run r ~grid:grid2 ~eps:1. ~delta:1e-6 ~m:10
           ~f:(fun _ -> [| 0.5 |])
           (Array.make 15 0.)))

let suite =
  [
    case "median accuracy" test_median_accuracy;
    case "extreme quantiles" test_extreme_quantiles;
    slow_case "rank error within certified bound" test_rank_error_within_bound;
    case "interquartile range" test_iqr;
    case "validation" test_validation;
    case "gupt end to end" test_gupt_end_to_end;
    case "gupt validation" test_gupt_validation;
  ]
