lib/prim/laplace.mli: Rng
