(* The local-model (LDP) 1-cluster competitor: exact algebraic laws of the
   randomizer and its debiasing inverse, planted-workload utility, the
   vacuous-certificate refusal, replay determinism, kernel-tier identity,
   and the engine job kind end to end. *)

open Testutil

module L = Privcluster.Local_cluster

(* ---- exact laws of the randomizer ---------------------------------- *)

let eps_k_gen =
  QCheck2.Gen.(
    triple (float_range 0.05 4.0) (int_range 2 40) (int_range 0 1000))

let test_law_sums_to_one =
  qcheck "randomizer law sums to 1 exactly" eps_k_gen (fun (eps, k, cell_raw) ->
      let cell = cell_raw mod k in
      let law = L.law ~eps ~k ~cell in
      (* p_keep and p_other share one denominator, so the sum telescopes
         exactly: tolerance is a few ulp of 1.0, not a statistical slack. *)
      Float.abs (Array.fold_left ( +. ) 0. law -. 1.) <= 8. *. epsilon_float)

let test_law_ratio =
  qcheck "p_keep / p_other = e^eps exactly" eps_k_gen (fun (eps, k, _) ->
      let r = L.p_keep ~eps ~k /. L.p_other ~eps ~k in
      Float.abs (r -. exp eps) <= 1e-9 *. exp eps)

let test_debias_sums_to_n =
  (* For ANY report vector with total n — not just plausible ones — the
     debiased estimates sum to exactly n: the estimator is the linear
     inverse of the randomizer's expectation operator. *)
  qcheck "debias sums to n for any report vector"
    QCheck2.Gen.(
      triple (float_range 0.05 4.0) (int_range 2 20) (list_size (int_range 1 100) (int_range 0 50)))
    (fun (eps, k, raw) ->
      let counts = Array.make k 0 in
      List.iter (fun v -> counts.(v mod k) <- counts.(v mod k) + 1) raw;
      let n = List.length raw in
      let est = L.debias ~eps ~k ~n counts in
      let sum = Array.fold_left ( +. ) 0. est in
      Float.abs (sum -. float_of_int n) <= 1e-6 *. float_of_int (max 1 n))

let test_randomize_unbiased_after_debias r =
  (* Statistical: many randomized reports of a fixed histogram, debiased,
     must recover the true histogram within a few standard errors. *)
  let eps = 1.0 and k = 8 and n = 40_000 in
  let truth = [| 20_000; 10_000; 5_000; 5_000; 0; 0; 0; 0 |] in
  let counts = Array.make k 0 in
  let i = ref 0 in
  Array.iteri
    (fun cell c ->
      for _ = 1 to c do
        let report = L.randomize (Prim.Rng.derive r ~stream:!i) ~eps ~k cell in
        counts.(report) <- counts.(report) + 1;
        incr i
      done)
    truth;
  let est = L.debias ~eps ~k ~n counts in
  (* Per-cell standard error of the debiased estimate is ≤ √n / (p − q). *)
  let p = L.p_keep ~eps ~k and q = L.p_other ~eps ~k in
  let se = sqrt (float_of_int n) /. (p -. q) in
  Array.iteri
    (fun j e ->
      check_true
        (Printf.sprintf "cell %d: |%.0f - %d| within 4 se = %.0f" j e truth.(j) (4. *. se))
        (Float.abs (e -. float_of_int truth.(j)) <= 4. *. se))
    est

(* ---- the planner ---------------------------------------------------- *)

let test_plan_shape () =
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let scales = L.plan ~grid ~eps:2.0 ~n:10_000 () in
  check_true "at least two scales" (Array.length scales >= 2);
  Array.iteri
    (fun l s ->
      check_int "dyadic" (2 lsl l) s.L.cells_per_axis;
      check_float ~tol:1e-12 "cell side" (1. /. float_of_int s.L.cells_per_axis) s.L.cell_side;
      check_true "cells within cap" (s.L.cells <= 4096);
      check_true "positive slack" (s.L.slack > 0.))
    scales;
  let total = Array.fold_left (fun acc s -> acc + s.L.group_size) 0 scales in
  check_int "groups partition the users" 10_000 total

(* ---- planted workloads ---------------------------------------------- *)

let test_planted_success r =
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.planted_ball r ~grid ~n:20_000 ~cluster_fraction:0.6 ~cluster_radius:0.05
  in
  let t = int_of_float (0.8 *. float_of_int w.Workload.Synth.cluster_size) in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  match L.run r ~grid ~eps:2.0 ~t ps with
  | Error f -> Alcotest.failf "planted run failed: %a" L.pp_failure f
  | Ok res ->
      let covered = Geometry.Pointset.ball_count ps ~center:res.L.center ~radius:res.L.radius in
      check_true "certificate non-vacuous" (res.L.delta_bound < float_of_int t);
      check_true
        (Printf.sprintf "covers t - delta (%d vs %d - %.0f)" covered t res.L.delta_bound)
        (float_of_int covered >= float_of_int t -. res.L.delta_bound);
      let s = res.L.scales.(res.L.scale_index) in
      check_float ~tol:1e-12 "radius is the block ball" (s.L.cell_side *. sqrt 2.) res.L.radius;
      Array.iter (fun c -> check_in_range "center in the cube" ~lo:0. ~hi:1. c) res.L.center

let test_too_small_database_refuses r =
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.planted_ball r ~grid ~n:800 ~cluster_fraction:0.35 ~cluster_radius:0.05
  in
  let t = int_of_float (0.8 *. float_of_int w.Workload.Synth.cluster_size) in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  match L.run r ~grid ~eps:2.0 ~t ps with
  | Ok res -> Alcotest.failf "expected a refusal, got %a" L.pp_result res
  | Error (L.All_certificates_vacuous { t = t'; min_delta }) ->
      check_int "failure echoes t" t t';
      check_true "min delta indeed reaches t" (min_delta >= float_of_int t)
  | Error (L.Not_enough_mass _ as f) ->
      (* Acceptable only if some certificate was live; at n = 800 and a 35%
         cluster none should be. *)
      Alcotest.failf "expected vacuous-certificate refusal, got %a" L.pp_failure f

(* ---- determinism ----------------------------------------------------- *)

let test_replay_determinism () =
  let mk () =
    let r = rng ~seed:90210 () in
    let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
    let w =
      Workload.Synth.planted_ball r ~grid ~n:15_000 ~cluster_fraction:0.7 ~cluster_radius:0.05
    in
    let ps = Geometry.Pointset.create w.Workload.Synth.points in
    (* A fixed derived stream, as the engine would use: the replay is a
       bit-identical transcript even after the generator above advanced. *)
    L.run (Prim.Rng.derive r ~stream:5) ~grid ~eps:2.0
      ~t:(int_of_float (0.8 *. float_of_int w.Workload.Synth.cluster_size))
      ps
  in
  match (mk (), mk ()) with
  | Ok a, Ok b ->
      check_true "same center" (Geometry.Vec.equal ~tol:0. a.L.center b.L.center);
      check_float ~tol:0. "same radius" a.L.radius b.L.radius;
      check_float ~tol:0. "same estimate" a.L.est_count b.L.est_count;
      check_int "same scale" a.L.scale_index b.L.scale_index
  | Error a, Error b ->
      check_true "same failure rendering"
        (Format.asprintf "%a" L.pp_failure a = Format.asprintf "%a" L.pp_failure b)
  | _ -> Alcotest.fail "replay diverged between Ok and Error"

let with_native_forced on f =
  let before = Kernel.native_active () in
  Kernel.set_native on;
  Fun.protect ~finally:(fun () -> Kernel.set_native before) f

let test_kernel_tier_identity () =
  (* The LDP pipeline itself never calls a C kernel, so both tiers must
     produce the identical transcript — this pins that property. *)
  let run () =
    let r = rng ~seed:777 () in
    let grid = Geometry.Grid.create ~axis_size:128 ~dim:2 in
    let w =
      Workload.Synth.planted_ball r ~grid ~n:12_000 ~cluster_fraction:0.7 ~cluster_radius:0.06
    in
    let ps = Geometry.Pointset.create w.Workload.Synth.points in
    L.run r ~grid ~eps:2.0
      ~t:(int_of_float (0.75 *. float_of_int w.Workload.Synth.cluster_size))
      ps
  in
  let a = with_native_forced true run and b = with_native_forced false run in
  match (a, b) with
  | Ok a, Ok b ->
      check_true "native and reference tiers agree"
        (Geometry.Vec.equal ~tol:0. a.L.center b.L.center && a.L.radius = b.L.radius
       && a.L.est_count = b.L.est_count)
  | Error _, Error _ -> ()
  | _ -> Alcotest.fail "tiers diverged between Ok and Error"

(* ---- the engine job kind --------------------------------------------- *)

let p ~eps ~delta = { Prim.Dp.eps; delta }

let batch_results ~domains ~seed =
  let service = Engine.Service.create ~domains ~seed ~faults:Engine.Faults.none () in
  let r = rng ~seed:4 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.planted_ball r ~grid ~n:20_000 ~cluster_fraction:0.7 ~cluster_radius:0.05
  in
  let ds =
    Engine.Service.register service ~name:"big" ~grid ~budget:(p ~eps:10. ~delta:1e-4)
      w.Workload.Synth.points
  in
  Engine.Service.run_batch service ~dataset:ds
    [
      {
        Engine.Job.id = "ldp";
        kind = Engine.Job.Local_cluster { t_fraction = 0.5 };
        eps = 2.0;
        delta = 0.;
        beta = 0.1;
        deadline_s = None;
        fallback = false;
      };
    ]

let canonical results =
  List.map
    (fun (r : Engine.Job.result) ->
      (r.Engine.Job.spec.Engine.Job.id, Engine.Job.status_name r.Engine.Job.status,
       Engine.Job.detail r))
    results

let test_engine_job_kind () =
  let r1 = batch_results ~domains:1 ~seed:21 in
  (match r1 with
  | [ r ] -> (
      check_true "job ok" (Engine.Job.status_name r.Engine.Job.status = "ok");
      match r.Engine.Job.status with
      | Engine.Job.Completed (Engine.Job.Cluster { ball; t; delta_bound; _ }) ->
          check_true "t from t_fraction" (t = 10_000);
          check_true "certificate non-vacuous" (delta_bound < float_of_int t);
          check_true "ball covers something" (ball.Engine.Job.covered > 0)
      | _ -> Alcotest.fail "expected a Cluster output")
  | _ -> Alcotest.fail "expected exactly one result");
  let r4 = batch_results ~domains:4 ~seed:21 in
  Alcotest.(check (list (triple string string string)))
    "4 domains bit-identical to 1 domain" (canonical r1) (canonical r4)

let test_job_line_roundtrip () =
  match Engine.Job.parse "local_cluster t_fraction=0.6 eps=2 id=ldp" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok [ spec ] -> (
      (match spec.Engine.Job.kind with
      | Engine.Job.Local_cluster { t_fraction } -> check_float "t_fraction" 0.6 t_fraction
      | _ -> Alcotest.fail "wrong kind");
      check_float "delta defaults to 0" 0. spec.Engine.Job.delta;
      match Engine.Job.parse (Engine.Job.spec_to_line spec) with
      | Ok [ spec' ] ->
          check_true "spec_to_line roundtrips" (Engine.Job.signature spec = Engine.Job.signature spec')
      | _ -> Alcotest.fail "rendered line does not parse")
  | Ok _ -> Alcotest.fail "expected one spec"

let suite =
  [
    test_law_sums_to_one;
    test_law_ratio;
    test_debias_sums_to_n;
    stat_slow_case "debiased reports recover the histogram" test_randomize_unbiased_after_debias;
    case "scale ladder shape" test_plan_shape;
    stat_slow_case "planted cluster found with live certificate" test_planted_success;
    stat_case "too-small database refuses with vacuous certificates"
      test_too_small_database_refuses;
    case "derived-stream replay is bit-identical" test_replay_determinism;
    case "native and reference kernel tiers agree" test_kernel_tier_identity;
    slow_case "engine job kind: run, certificate, domain independence" test_engine_job_kind;
    case "jobs-file line roundtrip" test_job_line_roundtrip;
  ]
