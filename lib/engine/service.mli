(** The engine front door: run a batch of jobs against a registered
    dataset.

    [run_batch] proceeds in three deterministic phases:

    + {b Admission} (sequential, coordinator only): every job is charged
      against the dataset's {!Accountant} in submission order.  Refused
      jobs get a {!Job.Refused} result immediately and are never
      dispatched — no noise is drawn for them, so refusal is free in the
      privacy ledger.  A job that opts into graceful degradation
      additionally {!Accountant.reserve}s its fallback's price here; if
      only the reservation is refused, the job still runs, just without a
      fallback.  Doing all charging before any execution makes the
      accept/refuse set a pure function of the submission list, never of
      worker timing.
    + {b Execution} (parallel): admitted jobs run on a supervised {!Pool}
      of [domains] worker domains, with up to [retries] in-place retry
      attempts per job.  Job [i] (by submission index, counting refused
      jobs) draws its randomness from [Prim.Rng.derive base ~stream:i] on
      {e every} attempt, so a retry after a crash-before-output fault is
      a bit-identical replay of the same mechanism invocation — it
      consumes no additional privacy and needs no new charge.  The batch
      output is bit-identical for any domain count under a fixed [seed],
      with or without injected faults (as long as the schedule is
      survivable; see {!Faults}).
    + {b Settlement} (sequential, coordinator only): outcomes are mapped
      to results in submission order and every fallback reservation is
      settled exactly once — {!Accountant.commit}ted if the job degraded
      (the fallback ran {!Privcluster.Good_radius} at the reserved price
      and the result is {!Job.Degraded}), {!Accountant.release}d
      otherwise.  Releasing depends only on the job's public status, so
      it leaks nothing.

    A job that times out or whose solver fails keeps its budget charge:
    by then the mechanism may already have consumed randomness, and
    refunds conditioned on the private outcome would themselves leak.
    (Admission-time refusals are the only free path; a released fallback
    reservation is not a refund — the reserved amount was never spent.)

    Deterministic solver failure values ([Error] returns) are not
    retried: a replay of the same stream fails identically.  Only raised
    exceptions — the crash-before-output shape — are retried.

    Results come back in submission order; every finished job is recorded
    in the service {!Telemetry} (statuses plus the ["retries"],
    ["worker_restarts"] and ["degraded"] counters) and logged on
    ["privcluster.engine"].  See OPERATIONS.md for the operator's view. *)

type t

val create :
  ?profile:Privcluster.Profile.t ->
  ?domains:int ->
  ?seed:int ->
  ?retries:int ->
  ?backoff_s:float ->
  ?faults:Faults.t ->
  unit ->
  t
(** [profile] defaults to {!Privcluster.Profile.practical}; [domains] to
    {!Pool.recommended_domains} and is clamped to ≥ 1; [seed] (default 1)
    is the base of every per-job derived stream; [retries] (default 2,
    clamped to ≥ 0) is the per-job in-place retry allowance; [backoff_s]
    (default 1 ms) the base retry backoff; [faults] defaults to
    {!Faults.of_env} — the [PRIVCLUSTER_FAULTS] schedule, or no faults
    when the variable is unset. *)

val registry : t -> Registry.t
val telemetry : t -> Telemetry.t
val domains : t -> int
val seed : t -> int
val retries : t -> int
val faults : t -> Faults.t

val result_cache : t -> Result_cache.t
(** The service-wide result cache ({!Result_cache}): consulted at
    admission for every worker job, written at settlement for every
    completed one.  A hit bypasses the accountant entirely — the
    ["cache_hits"] telemetry counter and the cache's own per-dataset
    stats record the reuse. *)

val register :
  t ->
  name:string ->
  grid:Geometry.Grid.t ->
  ?mode:Accountant.mode ->
  budget:Prim.Dp.params ->
  ?dense_threshold:int ->
  Geometry.Vec.t array ->
  Registry.dataset
(** Convenience passthrough to {!Registry.register} on the service's
    registry. *)

val run_batch :
  ?domains:int ->
  ?retries:int ->
  ?faults:Faults.t ->
  ?seed:int ->
  t ->
  dataset:Registry.dataset ->
  Job.spec list ->
  Job.result list
(** Run the batch as described above; [domains], [retries] and [faults]
    override the service defaults for this call.  [seed] overrides the base
    of the per-job derived streams for this batch only — the statistical
    verification harness ({!Check}) uses it to draw many independent runs of
    the same batch (including the reserve/commit fallback path) against one
    registered dataset without rebuilding the registry's indexes. *)

val find_dataset : t -> string -> (Registry.dataset, string) result
(** Look a dataset up by name on the service's registry.  The error text
    is written for a remote caller who cannot list the registry herself:
    it names the requested id {e and} the registered ids, so a typo'd
    request is actionable from the error alone. *)

val run_batch_named :
  ?domains:int ->
  ?retries:int ->
  ?faults:Faults.t ->
  ?seed:int ->
  t ->
  dataset:string ->
  Job.spec list ->
  (Job.result list, string) result
(** {!run_batch} against {!find_dataset}; [Error] is the lookup failure
    (nothing is charged — the batch never reaches admission). *)

val report_json : t -> dataset:Registry.dataset -> Job.result list -> Json.t
(** The batch report the CLI emits: dataset (with ledger, including
    outstanding reservations), per-job results, telemetry. *)

(** {2 Tracing and budget attribution}

    With tracing enabled ({!Obs.Span.set_enabled}), [run_batch] emits a
    [service.batch] root span bracketing [service.admission] /
    per-job execution / [service.settlement], one [cat="job"] root span
    per job attempt (labelled with the job id, stitched to the batch
    span across worker domains), a separate labelled root for a
    committed fallback run, and one [cat="budget"] instant event per
    accountant operation.  Tracing draws no randomness: batch outputs
    are bit-identical with tracing on or off. *)

val ledger : dataset:Registry.dataset -> (string * Obs.Span.charge) list
(** The dataset accountant's accepted charges ({!Accountant.entries}),
    as attribution charges. *)

val attribution : dataset:Registry.dataset -> unit -> Obs.Attribution.report
(** Reconcile all collected spans against the dataset's ledger; see
    {!Obs.Attribution} for what is checked. *)

(** {2 Standing queries}

    A [standing] job (see {!Job.kind}) declares a total [(ε, δ)] budget
    and a period count; registration reserves the budget as [periods]
    equal slices labelled ["<id>#<k>"], answers the query once
    immediately, and re-answers it after every subsequent epoch
    transition of its dataset (committing one slice per answer) until the
    slices are exhausted.  Tick results ride along in whatever batch
    triggered the epoch transition, as ordinary one-cluster results under
    the tick ids. *)

val standing_queries : t -> (string * string * int * int) list
(** [(dataset, id, ticks_answered, periods)] for every registered
    standing query, in registration order. *)

val subscribe_standing : t -> (dataset:string -> line:string -> seed:int -> stream:int -> unit) -> unit
(** [f] runs synchronously when a standing query is accepted at
    registration; [line] is the {!Job.spec_to_line} rendering and
    [seed]/[stream] the registration-time randomness coordinates —
    everything {!restore_standing} needs, which is how the server
    journals standing queries to its WAL. *)

val restore_standing :
  t -> dataset:Registry.dataset -> line:string -> seed:int -> stream:int -> (unit, string) result
(** Re-arm a standing query from its journaled registration after a WAL
    replay.  Answered ticks are recovered from the replayed ledger
    (committed ["<id>#<k>"] entries) and pending slices adopted from the
    replayed outstanding reservations; the next tick fires on the first
    epoch transition after the restart. *)
