module Json = Engine.Json
module Accountant = Engine.Accountant
module Registry = Engine.Registry
module Service = Engine.Service
module Job = Engine.Job
module Result_cache = Engine.Result_cache

let src = Logs.Src.create "privcluster.server" ~doc:"privclusterd daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : listen;
  wal_path : string;
  tenants : Tenants.spec list;
  capacity : int;
  domains : int;
  retries : int;
  seed : int;
  sync : bool;
  serving_stats : bool;
  trace_sample : int;
  slow_threshold_ms : float;
  slow_log : string option;
  slow_keep : int;
  slo_rules : Obs.Slo.rule list;
}

let default_config =
  {
    listen = `Unix "privclusterd.sock";
    wal_path = "privclusterd.wal";
    tenants = [];
    capacity = 64;
    domains = 2;
    retries = 2;
    seed = 1;
    sync = true;
    serving_stats = true;
    trace_sample = 0;
    slow_threshold_ms = 250.;
    slow_log = None;
    slow_keep = 64;
    slo_rules = Obs.Slo.default_rules;
  }

(* --- reply mailboxes ----------------------------------------------------- *)

module Mailbox = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let put mb v =
    Mutex.lock mb.m;
    mb.v <- Some v;
    Condition.signal mb.c;
    Mutex.unlock mb.m

  let take mb =
    Mutex.lock mb.m;
    let rec wait () =
      match mb.v with
      | Some v -> v
      | None ->
          Condition.wait mb.c mb.m;
          wait ()
    in
    let v = wait () in
    Mutex.unlock mb.m;
    v
end

(* --- daemon state -------------------------------------------------------- *)

type t = {
  cfg : config;
  wal : Wal.t;
  mutable histories : ((string * string) * Wal.op list) list;
      (* journal streams awaiting re-registration; executor thread only *)
  mutable svc_hooked : string list;
      (* tenants whose service-level journaling hooks (result cache,
         standing registrations) are subscribed; executor thread only *)
  tenants : Tenants.t;
  admission : Admission.t;
  serving : Serving.t option;
  mutable exemplar_seq : int;  (* executor thread only *)
  spans_preowned : bool;
      (* span collection was already on when the daemon started (an outer
         [--trace] owns the collector), so request capture must not reset it *)
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  stopping : bool Atomic.t;
  mutable stopped : bool;  (* guarded by stop_mutex *)
  stop_mutex : Mutex.t;
  conn_mutex : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable executor_thread : Thread.t option;
}

let sockaddr t = t.bound

let err code fmt =
  Printf.ksprintf (fun message -> Error { Wire.code; message }) fmt

(* --- executor-side handlers ---------------------------------------------- *)

let charge_of (p : Prim.Dp.params) =
  Obs.Span.charge ~eps:p.Prim.Dp.eps ~delta:p.Prim.Dp.delta ()

(* Replayed ledger operations re-enter the tracing stream exactly as
   [Service.run_batch] emits them live, so [Obs.Attribution.reconcile]'s
   hard ledger = events check holds across a restart. *)
let emit_budget_event (ev : Accountant.event) =
  match ev with
  | Accountant.Charged { label; cost } ->
      Obs.Span.event ~cat:"budget" ~label ~charge:(charge_of cost) "charge"
  | Accountant.Refused { label; cost; _ } ->
      Obs.Span.event ~cat:"budget" ~label ~charge:(charge_of cost) "refuse"
  | Accountant.Reserved { label; cost; _ } ->
      Obs.Span.event ~cat:"budget" ~label ~charge:(charge_of cost) "reserve"
  | Accountant.Committed { label; cost; _ } ->
      Obs.Span.event ~cat:"budget" ~label ~charge:(charge_of cost) "commit"
  | Accountant.Released { label; _ } -> Obs.Span.event ~cat:"budget" ~label "release"

let tenant_datasets tenant =
  let reg = Service.registry (Tenants.service tenant) in
  List.filter_map (Registry.find reg) (Registry.names reg)

(* One ε-spend sample per executed data-path request (plus one at
   registration as the window's baseline, and one per scrape so idle
   windows decay); runs on the executor thread, where touching the
   tenant's ledger is safe. *)
let sample_burn_ds t tenant ds =
  match t.serving with
  | None -> ()
  | Some sv ->
      let acct = Registry.accountant ds in
      Serving.record_burn sv ~tenant:(Tenants.name tenant)
        ~dataset:(Registry.name ds)
        ~budget_eps:(Accountant.budget acct).Prim.Dp.eps
        ~spent_eps:(Accountant.spent acct).Prim.Dp.eps
        ~now_ns:(Obs.Clock.now_ns ())

let sample_burn t tenant ~dataset =
  match Service.find_dataset (Tenants.service tenant) dataset with
  | Error _ -> ()
  | Ok ds -> sample_burn_ds t tenant ds

let exec_register t tenant ~dataset ~n ~dim ~axis ~frac ~radius ~seed ~budget ~mode =
  let svc = Tenants.service tenant in
  let tname = Tenants.name tenant in
  if Result.is_ok (Service.find_dataset svc dataset) then
    err Wire.Conflict "dataset %S is already registered" dataset
  else
    let key = (tname, dataset) in
    let ops = Option.value ~default:[] (List.assoc_opt key t.histories) in
    let synth = { Wal.n; dim; axis; frac; radius; seed } in
    let check =
      match Wal.opening ops with
      | Some (jmode, jbudget, _) when not (jmode = mode && jbudget = budget) ->
          err Wire.Conflict
            "journal for %S was opened with budget (%g, %g) under %s composition — \
             re-register with the same budget and mode to recover its ledger"
            dataset jbudget.Prim.Dp.eps jbudget.Prim.Dp.delta (Accountant.mode_name jmode)
      | Some (_, _, Some js) when js <> synth ->
          (* The journaled mutations and cached results only make sense
             against the pointset these parameters generate; replaying
             them onto a different base dataset would diverge silently. *)
          err Wire.Conflict
            "journal for %S describes a dataset synthesized with n=%d dim=%d axis=%d \
             frac=%g radius=%g seed=%d — re-register with the same parameters to \
             recover its ledger"
            dataset js.Wal.n js.Wal.dim js.Wal.axis js.Wal.frac js.Wal.radius js.Wal.seed
      | Some _ | None -> Ok ()
    in
    match check with
    | Error _ as e -> e
    | Ok () -> (
        (* Dry-run the journal against a scratch ledger first: a diverging
           journal must fail the request without leaving a half-registered
           dataset behind (the registry has no unregister). *)
        let dry =
          if ops = [] then Ok 0
          else Wal.replay ops (Accountant.create ~mode ~budget ())
        in
        match dry with
        | Error e -> err Wire.Conflict "%s" e
        | Ok _ -> (
            let rng = Prim.Rng.create ~seed:(seed + 7919) () in
            let grid = Geometry.Grid.create ~axis_size:axis ~dim in
            let w =
              Workload.Synth.planted_ball rng ~grid ~n ~cluster_fraction:frac
                ~cluster_radius:radius
            in
            match
              Service.register svc ~name:dataset ~grid ~mode ~budget
                w.Workload.Synth.points
            with
            | exception Invalid_argument m -> err Wire.Bad_request "register: %s" m
            | ds ->
                let acct = Registry.accountant ds in
                (* Engine-state ops replay in journal order: mutations
                   re-advance the registry to the pre-crash epoch (the
                   journaled coordinates are hex floats, so the replayed
                   pointset is bit-identical) and cache records restore
                   the recorded answers.  Standing registrations are
                   collected and re-armed only after the full budget
                   replay — their tick count and pending slices come from
                   the replayed ledger, which must be complete first. *)
                let standing_ops = ref [] in
                let on_apply = function
                  | Wal.Append { epoch; dim = d; points } -> (
                      if d <> Registry.dim ds then
                        Error
                          (Printf.sprintf "journaled append has dim %d, dataset has dim %d"
                             d (Registry.dim ds))
                      else
                        let rows =
                          Array.init
                            (Array.length points / d)
                            (fun i -> Geometry.Vec.of_row points ~off:(i * d) ~dim:d)
                        in
                        match Registry.append ds rows with
                        | e when e = epoch -> Ok ()
                        | e ->
                            Error
                              (Printf.sprintf
                                 "journaled append produced epoch %d, journal says %d" e
                                 epoch)
                        | exception Invalid_argument m ->
                            Error ("journaled append rejected: " ^ m))
                  | Wal.Retire { epoch; from_; count } -> (
                      match Registry.retire ds ~from_ ~count with
                      | e when e = epoch -> Ok ()
                      | e ->
                          Error
                            (Printf.sprintf
                               "journaled retire produced epoch %d, journal says %d" e
                               epoch)
                      | exception Invalid_argument m ->
                          Error ("journaled retire rejected: " ^ m))
                  | Wal.Cached { epoch; signature; seed; stream; output } -> (
                      match Job.output_of_wire output with
                      | Ok out ->
                          Result_cache.restore
                            (Service.result_cache svc)
                            { Result_cache.dataset; epoch; signature; seed; stream }
                            out;
                          Ok ()
                      | Error e ->
                          Log.warn (fun m ->
                              m "tenant %s: journaled cache entry for %s dropped: %s"
                                tname dataset e);
                          Ok ())
                  | Wal.Standing { line; seed; stream } ->
                      standing_ops := (line, seed, stream) :: !standing_ops;
                      Ok ()
                  | _ -> Ok ()
                in
                let replayed =
                  if ops = [] then begin
                    Wal.append t.wal
                      { Wal.tenant = tname; dataset;
                        op = Wal.Open { mode; budget; synth = Some synth } };
                    Ok 0
                  end
                  else begin
                    t.histories <- List.remove_assoc key t.histories;
                    Wal.replay ~on_event:emit_budget_event ~on_apply ops acct
                  end
                in
                match replayed with
                | Error e ->
                    (* The dry run validated every budget op, so only an
                       engine-state op can land here: a journaled mutation
                       that no longer reproduces its journaled epoch. *)
                    err Wire.Internal
                      "%s — dataset %S is only partially recovered; inspect %s before \
                       retrying"
                      e dataset (Wal.path t.wal)
                | Ok orphans ->
                List.iter
                  (fun (line, seed, stream) ->
                    match Service.restore_standing svc ~dataset:ds ~line ~seed ~stream with
                    | Ok () -> ()
                    | Error e ->
                        Log.warn (fun m ->
                            m "tenant %s: standing query on %s not re-armed: %s" tname
                              dataset e))
                  (List.rev !standing_ops);
                (* Journal from here on; subscribing after replay keeps the
                   replayed ops from being re-appended. *)
                Accountant.subscribe acct (fun ev ->
                    Wal.append t.wal (Wal.record_of_event ~tenant:tname ~dataset ev));
                Registry.subscribe_mutations ds (fun mut ->
                    let op =
                      match mut with
                      | Registry.Appended { epoch; dim; points } ->
                          Wal.Append { epoch; dim; points }
                      | Registry.Retired { epoch; from_; count } ->
                          Wal.Retire { epoch; from_; count }
                    in
                    Wal.append t.wal { Wal.tenant = tname; dataset; op });
                if not (List.mem tname t.svc_hooked) then begin
                  (* Once per tenant: these hooks live on the service, not
                     the dataset — subscribing them again on the tenant's
                     next registration would journal every entry twice. *)
                  t.svc_hooked <- tname :: t.svc_hooked;
                  Result_cache.subscribe (Service.result_cache svc) (fun ck out ->
                      Wal.append t.wal
                        {
                          Wal.tenant = tname;
                          dataset = ck.Result_cache.dataset;
                          op =
                            Wal.Cached
                              {
                                epoch = ck.Result_cache.epoch;
                                signature = ck.Result_cache.signature;
                                seed = ck.Result_cache.seed;
                                stream = ck.Result_cache.stream;
                                output = Job.output_to_wire out;
                              };
                        });
                  Service.subscribe_standing svc (fun ~dataset ~line ~seed ~stream ->
                      Wal.append t.wal
                        { Wal.tenant = tname; dataset; op = Wal.Standing { line; seed; stream } })
                end;
                if ops <> [] then
                  Log.info (fun m ->
                      m "tenant %s: dataset %s recovered from journal (%d ops, %d orphaned \
                         reservations held)"
                        tname dataset (List.length ops) orphans);
                Ok
                  (Json.Obj
                     [
                       ("dataset", Registry.to_json ds);
                       ("replayed", Json.Bool (ops <> []));
                       ("replayed_ops", Json.Int (List.length ops));
                       ("orphaned_reservations", Json.Int orphans);
                     ])))

let ledger_json ds =
  let acct = Registry.accountant ds in
  let attribution =
    (* Only meaningful when tracing is on: with no spans collected the
       ledger = events check would fail vacuously. *)
    if Obs.Span.enabled () then
      [ ("attribution", Obs.Attribution.to_json (Service.attribution ~dataset:ds ())) ]
    else []
  in
  Json.Obj
    ([
       ("dataset", Json.String (Registry.name ds));
       ("ledger", Accountant.to_json acct);
     ]
    @ attribution)

let exec_run t tenant ~dataset ~seed specs =
  let svc = Tenants.service tenant in
  match Service.run_batch_named ?seed ~domains:t.cfg.domains svc ~dataset specs with
  | Error msg -> err Wire.Unknown_dataset "%s" msg
  | Ok results ->
      let ds = Result.get_ok (Service.find_dataset svc dataset) in
      Ok
        (Json.Obj
           [
             ("dataset", Json.String dataset);
             ("results", Json.List (List.map Job.result_to_json results));
             ("ledger", Accountant.to_json (Registry.accountant ds));
           ])

(* Mutations and standing registrations run through [run_batch_named] like
   any other batch, so the engine's own machinery — epoch publication,
   standing-query ticks, journaling subscriptions — fires exactly as it
   would for a jobs-file submission. *)

let mutation_reply svc ~dataset results =
  let ds = Result.get_ok (Service.find_dataset svc dataset) in
  Ok
    (Json.Obj
       [
         ("dataset", Json.String dataset);
         ("epoch", Json.Int (Registry.epoch ds));
         ("n", Json.Int (Registry.n ds));
         ("results", Json.List (List.map Job.result_to_json results));
         ("ledger", Accountant.to_json (Registry.accountant ds));
       ])

let mutate_spec id op =
  {
    Job.id;
    kind = Job.Mutate op;
    eps = 0.;
    delta = 0.;
    beta = Workload.Harness.default_beta;
    deadline_s = None;
    fallback = false;
  }

let exec_append t tenant ~dataset ~n ~seed ~frac ~radius =
  let svc = Tenants.service tenant in
  let spec = mutate_spec "append" (Job.Append_synth { n; seed; frac; radius }) in
  match Service.run_batch_named ~domains:t.cfg.domains svc ~dataset [ spec ] with
  | Error msg -> err Wire.Unknown_dataset "%s" msg
  | Ok results -> mutation_reply svc ~dataset results

let exec_retire t tenant ~dataset ~from_ ~count =
  let svc = Tenants.service tenant in
  let spec = mutate_spec "retire" (Job.Retire_range { from_; count }) in
  match Service.run_batch_named ~domains:t.cfg.domains svc ~dataset [ spec ] with
  | Error msg -> err Wire.Unknown_dataset "%s" msg
  | Ok results -> mutation_reply svc ~dataset results

let exec_standing t tenant ~dataset ~id ~t_fraction ~eps ~delta ~periods ~seed =
  let svc = Tenants.service tenant in
  let spec =
    {
      Job.id;
      kind = Job.Standing { t_fraction; periods };
      eps;
      delta;
      beta = Workload.Harness.default_beta;
      deadline_s = None;
      fallback = false;
    }
  in
  match Service.run_batch_named ?seed ~domains:t.cfg.domains svc ~dataset [ spec ] with
  | Error msg -> err Wire.Unknown_dataset "%s" msg
  | Ok results -> mutation_reply svc ~dataset results

let exec_epoch _t tenant ~dataset =
  let svc = Tenants.service tenant in
  match Service.find_dataset svc dataset with
  | Error msg -> err Wire.Unknown_dataset "%s" msg
  | Ok ds ->
      let lookups, hits = Registry.bounds_cache_stats ds in
      let chits, cmisses = Result_cache.stats (Service.result_cache svc) ~dataset in
      Ok
        (Json.Obj
           [
             ("dataset", Json.String dataset);
             ("epoch", Json.Int (Registry.epoch ds));
             ("n", Json.Int (Registry.n ds));
             ("dim", Json.Int (Registry.dim ds));
             ( "index_backend",
               Json.String
                 (if Geometry.Pointset.index_is_dense (Registry.index ds) then "dense"
                  else "kdtree") );
             ( "bounds_cache",
               Json.Obj [ ("lookups", Json.Int lookups); ("hits", Json.Int hits) ] );
             ( "result_cache",
               Json.Obj [ ("hits", Json.Int chits); ("misses", Json.Int cmisses) ] );
           ])

let exec_settle _t tenant ~dataset ~action ~label =
  let svc = Tenants.service tenant in
  match Service.find_dataset svc dataset with
  | Error msg -> err Wire.Unknown_dataset "%s" msg
  | Ok ds ->
      let acct = Registry.accountant ds in
      let all = Accountant.outstanding acct in
      let chosen =
        match label with
        | None -> all
        | Some l -> List.filter (fun (_, lbl, _) -> lbl = l) all
      in
      (* Settlement reuses the ordinary commit/release path, so the WAL
         subscription journals each operation and a later replay holds no
         orphan twice.  The tracing events mirror what a live settlement
         inside [run_batch] would have emitted. *)
      let settled =
        List.map
          (fun (r, lbl, (cost : Prim.Dp.params)) ->
            (match action with
            | Wire.Commit_orphans ->
                Accountant.commit acct r;
                Obs.Span.event ~cat:"budget" ~label:lbl ~charge:(charge_of cost) "commit"
            | Wire.Release_orphans ->
                Accountant.release acct r;
                Obs.Span.event ~cat:"budget" ~label:lbl "release");
            { Wire.label = lbl; eps = cost.Prim.Dp.eps; delta = cost.Prim.Dp.delta })
          chosen
      in
      let remaining = List.length (Accountant.outstanding acct) in
      let reply = Wire.settle_reply_to_json { Wire.action; settled; remaining } in
      Ok
        (match reply with
        | Json.Obj fields -> Json.Obj (("dataset", Json.String dataset) :: fields)
        | other -> other)

let exec_ledger _t tenant ~dataset =
  match Service.find_dataset (Tenants.service tenant) dataset with
  | Error msg -> err Wire.Unknown_dataset "%s" msg
  | Ok ds -> Ok (ledger_json ds)

let exec_datasets _t tenant =
  Ok (Json.Obj [ ("datasets", Json.List (List.map Registry.to_json (tenant_datasets tenant))) ])

let exec_metrics t tenant =
  let svc = Tenants.service tenant in
  let datasets = tenant_datasets tenant in
  let daemon_families =
    let open Obs.Prom in
    [
      Gauge
        {
          name = "privclusterd_queue_depth";
          help = "Runs queued for the executor.";
          samples = [ ([], float_of_int (Admission.length t.admission)) ];
        };
      Gauge
        {
          name = "privclusterd_tenant_in_flight";
          help = "This tenant's queued-plus-running batches.";
          samples =
            [
              ( [ ("tenant", Tenants.name tenant) ],
                float_of_int (Admission.in_flight (Tenants.slot tenant)) );
            ];
        };
      Gauge
        {
          name = "privclusterd_draining";
          help = "1 while graceful drain is in progress.";
          samples = [ ([], if Admission.draining t.admission then 1. else 0.) ];
        };
    ]
  in
  let serving_families =
    match t.serving with
    | None -> []
    | Some sv ->
        (* Every scrape refreshes the burn windows, so an idle tenant's
           burn rate decays instead of freezing at its last burst. *)
        List.iter (fun ds -> sample_burn_ds t tenant ds) datasets;
        Engine.Exposition.serving_families
          {
            Engine.Exposition.requests = Serving.request_rows sv;
            queue_wait = Serving.wait_rows sv;
            burn = Serving.burn_rows sv ~now_ns:(Obs.Clock.now_ns ());
            sheds = Serving.shed_rows sv;
          }
  in
  let text =
    Engine.Exposition.render ~datasets ~result_cache:(Service.result_cache svc)
      ~telemetry:(Service.telemetry svc) ()
    ^ Obs.Prom.render (daemon_families @ serving_families)
  in
  Ok (Json.Obj [ ("metrics", Json.String text) ])

let health_json t =
  match t.serving with
  | None ->
      Json.Obj
        [
          ("status", Json.String "ok");
          ("serving_stats", Json.Bool false);
          ("rules", Json.List []);
        ]
  | Some sv ->
      let verdicts = Serving.health sv ~now_ns:(Obs.Clock.now_ns ()) in
      let status = Obs.Slo.worst_of verdicts in
      Json.Obj
        [
          ("status", Json.String (Obs.Slo.status_to_string status));
          ("draining", Json.Bool (Admission.draining t.admission));
          ("rules", Json.List (List.map Obs.Slo.verdict_to_json verdicts));
        ]

(* --- connection handling ------------------------------------------------- *)

type reader = {
  rfd : Unix.file_descr;
  chunk : bytes;
  line : Buffer.t;  (* the current partial line; bounded by [max_request_bytes] *)
  mutable queued : string list;  (* complete lines, oldest first *)
}

(* Longest accepted request line.  Legitimate requests are small (a jobs
   file of thousands of lines stays well under 1 MiB); the cap exists so a
   client — including one that never authenticates — cannot grow the read
   buffer without bound by streaming bytes with no newline. *)
let max_request_bytes = 8 * 1024 * 1024

type read_outcome = Line of string | Eof | Overflow

let make_reader fd =
  { rfd = fd; chunk = Bytes.create 4096; line = Buffer.create 4096; queued = [] }

let rec read_line r =
  match r.queued with
  | l :: rest ->
      r.queued <- rest;
      if String.length l > max_request_bytes then Overflow else Line l
  | [] -> (
      if Buffer.length r.line > max_request_bytes then Overflow
      else
        match Unix.read r.rfd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> Eof
        | n ->
            (* Scan the fresh chunk only: completed lines move out of the
               buffer and the trailing fragment is appended once, so no
               already-buffered prefix is ever recopied or rescanned. *)
            let start = ref 0 in
            for i = 0 to n - 1 do
              if Bytes.get r.chunk i = '\n' then begin
                Buffer.add_subbytes r.line r.chunk !start (i - !start);
                r.queued <- Buffer.contents r.line :: r.queued;
                Buffer.clear r.line;
                start := i + 1
              end
            done;
            Buffer.add_subbytes r.line r.chunk !start (n - !start);
            r.queued <- List.rev r.queued;
            read_line r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line r
        | exception Unix.Unix_error (_, _, _) -> Eof)

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

let submit_and_wait t ?control ?slot ~verb work =
  let mb = Mailbox.create () in
  Option.iter Serving.record_submit t.serving;
  let submitted_ns = Obs.Clock.now_ns () in
  (* The mailbox must be filled on every path: an exception escaping the
     executor would otherwise strand this connection thread in [take]
     forever (and [stop] with it, on the join). *)
  let guarded () =
    Option.iter
      (fun sv ->
        Serving.record_queue_wait sv ~verb
          ~ns:(Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) submitted_ns)))
      t.serving;
    Mailbox.put mb
      (try work ()
       with e -> err Wire.Internal "unexpected failure: %s" (Printexc.to_string e))
  in
  match Admission.submit t.admission ?control ?slot guarded with
  | Error reason ->
      Option.iter (fun sv -> Serving.record_shed sv reason) t.serving;
      err (Wire.Rejected reason) "request shed (%s); nothing was charged"
        (Wire.shed_reason_name reason)
  | Ok () -> Mailbox.take mb

(* Everything from the root span's id onward: ids increase in start
   order and a parent always sorts before its children, so one pass over
   the sorted list collects the whole subtree. *)
let subtree_of spans root_id =
  let keep = Hashtbl.create 64 in
  Hashtbl.replace keep root_id ();
  List.filter
    (fun (sp : Obs.Span.span) ->
      if
        sp.Obs.Span.id = root_id
        || (match sp.Obs.Span.parent with
           | Some p -> Hashtbl.mem keep p
           | None -> false)
      then begin
        Hashtbl.replace keep sp.Obs.Span.id ();
        true
      end
      else false)
    spans

(* Wrap an executor work item in a request root span and, when the
   deterministic head sampler picks the request or it exceeds the slow
   threshold, write the span subtree to the exemplar ring.  The sampling
   decision is a pure hash of (tenant, verb, rid): no RNG is consulted,
   so outputs and result-cache keys are bit-identical with sampling on
   or off (pinned by the diff test). *)
let traced t ~verb ~tenant_name ~rid work () =
  match t.serving with
  | Some sv when Serving.sample_every sv > 0 || Serving.slow_log_dir sv <> None ->
      let key = Printf.sprintf "%s/%s/%d" tenant_name verb rid in
      let want_sample = Serving.sampled sv ~key in
      let h =
        Obs.Span.start ~cat:"request"
          ~attrs:(fun () ->
            [
              ("verb", Obs.Span.S verb);
              ("tenant", Obs.Span.S tenant_name);
              ("rid", Obs.Span.I rid);
              ("sampled", Obs.Span.B want_sample);
            ])
          ("request:" ^ verb)
      in
      let started_ns = Obs.Clock.now_ns () in
      let result =
        try work ()
        with e ->
          Obs.Span.finish h;
          raise e
      in
      Obs.Span.finish h;
      let dur_ns = Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) started_ns) in
      let slow = dur_ns >= Serving.slow_threshold_ns sv in
      (match Obs.Span.h_id h with
      | Some root_id when want_sample || slow ->
          let tree = subtree_of (Obs.Span.spans ()) root_id in
          t.exemplar_seq <- t.exemplar_seq + 1;
          Serving.write_exemplar sv ~verb ~seq:t.exemplar_seq
            ~reason:(if slow then "slow" else "sampled")
            ~json:(Obs.Trace.to_string tree)
      | _ -> ());
      (* The collector would otherwise grow by every request's spans for
         the life of the daemon; only an outer [--trace] consumer wants
         them kept. *)
      if not t.spans_preowned then Obs.Span.reset ();
      result
  | _ -> work ()

(* Client-controlled synthesis parameters are checked before the request
   reaches the executor: [Grid.create], [Synth.planted_ball] and
   [Array.init] raise on these, and a raise on the executor thread must
   never be how a bad request is discovered. *)
let validate_register ~n ~dim ~axis ~frac ~radius =
  let bad fmt = Printf.ksprintf (fun m -> Some m) fmt in
  if n < 1 then bad "n must be >= 1 (got %d)" n
  else if dim < 1 then bad "dim must be >= 1 (got %d)" dim
  else if axis < 2 then bad "axis must be >= 2 (got %d)" axis
  else if not (frac > 0. && frac <= 1.) then bad "frac must be in (0, 1] (got %g)" frac
  else if not (Float.is_finite radius && radius >= 0.) then
    bad "radius must be finite and >= 0 (got %g)" radius
  else None

let handle_request t authed (envelope : Wire.envelope) =
  let verb = Wire.request_name envelope.Wire.request in
  let rid = envelope.Wire.rid in
  (* Data-path work items get the request root span + exemplar capture
     and a burn-rate sample; [submit_data] keeps the eight call sites
     from repeating the plumbing. *)
  let submit_data tenant ~dataset work =
    let work = (fun () -> let r = work () in sample_burn t tenant ~dataset; r) in
    submit_and_wait t ~verb
      ~slot:(Tenants.slot tenant, Tenants.max_in_flight tenant)
      (traced t ~verb ~tenant_name:(Tenants.name tenant) ~rid work)
  in
  match (envelope.Wire.request, !authed) with
  | Wire.Hello { version; tenant; token }, None ->
      if version <> Wire.version then
        err Wire.Unsupported_version "server speaks protocol %d, client asked for %d"
          Wire.version version
      else (
        match Tenants.authenticate t.tenants ~name:tenant ~token with
        | Some tn ->
            authed := Some tn;
            Ok
              (Json.Obj
                 [
                   ("server", Json.String "privclusterd");
                   ("version", Json.Int Wire.version);
                   ("tenant", Json.String tenant);
                 ])
        | None -> err Wire.Unauthorized "unknown tenant or bad token")
  | Wire.Hello _, Some _ -> err Wire.Bad_request "already authenticated"
  | _, None -> err Wire.Unauthorized "hello required before any other request"
  | Wire.Ping, Some _ ->
      Ok
        (Json.Obj
           [
             ("pong", Json.Bool true);
             ("draining", Json.Bool (Admission.draining t.admission));
           ])
  | Wire.Run { dataset; jobs; seed }, Some tenant -> (
      match Job.parse ~default_beta:Workload.Harness.default_beta jobs with
      | Error e -> err Wire.Bad_request "jobs: %s" e
      | Ok [] -> err Wire.Bad_request "jobs: empty batch"
      | Ok specs -> submit_data tenant ~dataset (fun () -> exec_run t tenant ~dataset ~seed specs))
  | Wire.Register { dataset; n; dim; axis; frac; radius; seed; budget; mode }, Some tenant
    -> (
      match validate_register ~n ~dim ~axis ~frac ~radius with
      | Some msg -> err Wire.Bad_request "register: %s" msg
      | None ->
          submit_and_wait t ~control:true ~verb
            (traced t ~verb ~tenant_name:(Tenants.name tenant) ~rid (fun () ->
                 let r =
                   exec_register t tenant ~dataset ~n ~dim ~axis ~frac ~radius ~seed
                     ~budget ~mode
                 in
                 (* Baseline sample: a fresh window starts at the
                    replayed spend, not at zero. *)
                 sample_burn t tenant ~dataset;
                 r)))
  | Wire.Append { dataset; n; seed; frac; radius }, Some tenant ->
      submit_data tenant ~dataset (fun () -> exec_append t tenant ~dataset ~n ~seed ~frac ~radius)
  | Wire.Retire { dataset; from_; count }, Some tenant ->
      submit_data tenant ~dataset (fun () -> exec_retire t tenant ~dataset ~from_ ~count)
  | Wire.Standing { dataset; id; t_fraction; eps; delta; periods; seed }, Some tenant ->
      submit_data tenant ~dataset (fun () ->
          exec_standing t tenant ~dataset ~id ~t_fraction ~eps ~delta ~periods ~seed)
  | Wire.Epoch { dataset }, Some tenant ->
      submit_and_wait t ~control:true ~verb (fun () -> exec_epoch t tenant ~dataset)
  | Wire.Settle { dataset; action; label }, Some tenant ->
      submit_and_wait t ~control:true ~verb (fun () ->
          exec_settle t tenant ~dataset ~action ~label)
  | Wire.Ledger { dataset }, Some tenant ->
      submit_and_wait t ~control:true ~verb (fun () -> exec_ledger t tenant ~dataset)
  | Wire.Datasets, Some tenant ->
      submit_and_wait t ~control:true ~verb (fun () -> exec_datasets t tenant)
  | Wire.Metrics, Some tenant ->
      submit_and_wait t ~control:true ~verb (fun () -> exec_metrics t tenant)
  | Wire.Health, Some _ ->
      (* Answered on the connection thread, like [ping]: a health probe
         must work even when the executor queue is deep or draining, and
         [Serving] is safe to read concurrently. *)
      Ok (health_json t)
  | Wire.Stats, Some _ -> (
      match t.serving with
      | None ->
          Ok
            (Json.Obj
               [ ("serving_stats", Json.Bool false); ("requests", Json.List []) ])
      | Some sv -> Ok (Serving.stats_json sv ~now_ns:(Obs.Clock.now_ns ())))

let handle_conn t fd =
  let reader = make_reader fd in
  let authed = ref None in
  let rec loop () =
    match read_line reader with
    | Eof -> ()
    | Overflow ->
        (* The stream cannot be resynchronised past an oversized line:
           reply once, then drop the connection. *)
        (try
           write_all fd
             (Wire.reply_to_line ~rid:0
                (err Wire.Bad_request "request line exceeds %d bytes" max_request_bytes))
         with Unix.Unix_error (_, _, _) -> ())
    | Line line when String.trim line = "" -> loop ()
    | Line line ->
        let received_ns = Obs.Clock.now_ns () in
        let rid, verb, body =
          match Wire.request_of_line line with
          | Error e -> (Wire.rid_of_line line, "invalid", Error e)
          | Ok envelope -> (
              ( envelope.Wire.rid,
                Wire.request_name envelope.Wire.request,
                try handle_request t authed envelope
                with e ->
                  err Wire.Internal "unexpected failure: %s" (Printexc.to_string e) ))
        in
        let continue =
          try
            write_all fd (Wire.reply_to_line ~rid body);
            true
          with Unix.Unix_error (_, _, _) -> false
        in
        (* Admission-to-reply, recorded after the reply bytes are written
           so a slow client socket shows up in the verb's latency. *)
        Option.iter
          (fun sv ->
            let tenant =
              match !authed with Some tn -> Tenants.name tn | None -> "-"
            in
            Serving.record_request sv ~verb ~tenant
              ~ns:(Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) received_ns)))
          t.serving;
        if continue then loop ()
  in
  (try loop () with _ -> ());
  let self = Thread.self () in
  Mutex.lock t.conn_mutex;
  t.conns <- List.filter (fun c -> c != fd) t.conns;
  (* A finished connection has nothing left to join: prune our own handle
     so [conn_threads] does not grow by one per connection ever accepted.
     [stop] snapshots the list under the same mutex — a handle it read
     before we pruned just makes its join a no-op. *)
  t.conn_threads <-
    List.filter (fun th -> Thread.id th <> Thread.id self) t.conn_threads;
  Mutex.unlock t.conn_mutex;
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(* --- lifecycle ----------------------------------------------------------- *)

let accept_loop t =
  let rec go () =
    if Atomic.get t.stopping then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> go ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              Mutex.lock t.conn_mutex;
              t.conns <- fd :: t.conns;
              t.conn_threads <- Thread.create (handle_conn t) fd :: t.conn_threads;
              Mutex.unlock t.conn_mutex;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (_, _, _) -> if Atomic.get t.stopping then () else go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
  match t.cfg.listen with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | `Tcp _ -> ()

let bind_listen = function
  | `Unix path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | `Tcp (host, port) ->
      let addr = Unix.inet_addr_of_string host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let start cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  match Wal.load cfg.wal_path with
  | Error e -> Error ("WAL recovery: " ^ e)
  | Ok (records, tail) -> (
      (match tail with
      | Wal.Clean -> ()
      | Wal.Torn n ->
          Log.warn (fun m ->
              m "WAL %s: dropped a torn final write (%d bytes)" cfg.wal_path n));
      (* Startup compaction: same records, fresh file — reclaims the torn
         tail and bounds growth across restarts. *)
      match Wal.compact ~sync:cfg.sync ~path:cfg.wal_path records with
      | Error e -> Error ("WAL compaction: " ^ e)
      | Ok () -> (
          match Wal.open_ ~sync:cfg.sync cfg.wal_path with
          | Error e -> Error ("WAL open: " ^ e)
          | Ok wal -> (
              let service () =
                Service.create ~domains:cfg.domains ~seed:cfg.seed ~retries:cfg.retries ()
              in
              match Tenants.create ~service cfg.tenants with
              | Error e ->
                  Wal.close wal;
                  Error e
              | Ok tenants -> (
                  match bind_listen cfg.listen with
                  | exception Unix.Unix_error (e, _, arg) ->
                      Wal.close wal;
                      Error
                        (Printf.sprintf "listen %s: %s" arg (Unix.error_message e))
                  | listen_fd ->
                      let serving =
                        if not cfg.serving_stats then None
                        else
                          Some
                            (Serving.create ~sample_every:cfg.trace_sample
                               ~slow_threshold_ms:cfg.slow_threshold_ms
                               ?slow_log:cfg.slow_log ~slow_keep:cfg.slow_keep
                               ~rules:cfg.slo_rules ())
                      in
                      let spans_preowned = Obs.Span.enabled () in
                      let capture_wanted =
                        match serving with
                        | Some sv ->
                            Serving.sample_every sv > 0 || Serving.slow_log_dir sv <> None
                        | None -> false
                      in
                      if capture_wanted && not spans_preowned then
                        Obs.Span.set_enabled true;
                      (* Resume the ring's sequence past any files left by a
                         previous incarnation, so a restart never overwrites
                         exemplars it did not write. *)
                      let exemplar_seq =
                        match serving with
                        | None -> 0
                        | Some sv ->
                            List.fold_left
                              (fun acc f ->
                                let base = Filename.basename f in
                                match
                                  int_of_string_opt
                                    (String.sub base 9 (min 8 (String.length base - 9)))
                                with
                                | Some n -> max acc n
                                | None | (exception Invalid_argument _) -> acc)
                              0 (Serving.exemplar_files sv)
                      in
                      let t =
                        {
                          cfg;
                          wal;
                          histories = Wal.histories records;
                          svc_hooked = [];
                          tenants;
                          admission = Admission.create ~capacity:cfg.capacity;
                          serving;
                          exemplar_seq;
                          spans_preowned;
                          listen_fd;
                          bound = Unix.getsockname listen_fd;
                          stopping = Atomic.make false;
                          stopped = false;
                          stop_mutex = Mutex.create ();
                          conn_mutex = Mutex.create ();
                          conns = [];
                          conn_threads = [];
                          accept_thread = None;
                          executor_thread = None;
                        }
                      in
                      t.executor_thread <- Some (Thread.create Admission.run t.admission);
                      t.accept_thread <- Some (Thread.create accept_loop t);
                      Log.info (fun m ->
                          m "privclusterd listening (%s); %d tenants, %d journaled streams"
                            (match cfg.listen with
                            | `Unix p -> "unix:" ^ p
                            | `Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p)
                            (List.length cfg.tenants)
                            (List.length t.histories));
                      Ok t))))

let stop t =
  Mutex.lock t.stop_mutex;
  let first = not t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_mutex;
  if first then begin
    Log.info (fun m -> m "privclusterd draining");
    Atomic.set t.stopping true;
    Option.iter Thread.join t.accept_thread;
    (* Runs queued before the drain flag still execute and reply; new
       submissions shed with [draining]. *)
    Admission.drain t.admission;
    Option.iter Thread.join t.executor_thread;
    Mutex.lock t.conn_mutex;
    let conns = t.conns and threads = t.conn_threads in
    Mutex.unlock t.conn_mutex;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ())
      conns;
    List.iter Thread.join threads;
    Wal.close t.wal;
    Log.info (fun m -> m "privclusterd stopped cleanly")
  end

let run ?on_ready cfg =
  match start cfg with
  | Error _ as e -> e
  | Ok t ->
      let stop_requested = Atomic.make false in
      let handler _ = Atomic.set stop_requested true in
      let previous =
        List.map
          (fun s -> (s, Sys.signal s (Sys.Signal_handle handler)))
          [ Sys.sigterm; Sys.sigint ]
      in
      Option.iter (fun f -> f t) on_ready;
      while not (Atomic.get stop_requested) do
        Thread.delay 0.05
      done;
      stop t;
      List.iter (fun (s, b) -> Sys.set_signal s b) previous;
      Ok ()
