(** Registered datasets: the per-dataset state the engine amortizes across
    queries.

    Registering a dataset builds its {!Geometry.Pointset.index} once (the
    O(n²) — or k-d-tree — construction that dominates a cold 1-cluster
    query) and attaches a budgeted {!Accountant}; every subsequent job
    against the dataset reuses both.  The [(r_lo, r_hi)] sandwich of
    {!Workload.Metrics.r_opt_bounds_indexed} is also cached, keyed by the
    target [t], because repeated queries overwhelmingly share their target
    size.

    Worker domains read the pointset and index concurrently; both are
    immutable after construction.  The r_opt-bounds cache is the one
    mutable structure jobs touch and is mutex-protected. *)

type dataset

type t
(** A named collection of datasets (the engine's directory). *)

val create : unit -> t

val register :
  t ->
  name:string ->
  grid:Geometry.Grid.t ->
  ?mode:Accountant.mode ->
  budget:Prim.Dp.params ->
  ?dense_threshold:int ->
  ?index_domains:int ->
  Geometry.Vec.t array ->
  dataset
(** Build the index ({!Geometry.Pointset.auto_index} with the given dense
    threshold) and the accountant, and file the dataset under [name].  The
    points are packed once into flat storage; every job then reads that
    storage through zero-copy views.  [index_domains > 1] parallelizes the
    dense-index construction (the result is identical for any value).
    @raise Invalid_argument on a duplicate name, an empty point array, or
    points of mixed dimension. *)

val find : t -> string -> dataset option
val names : t -> string list
(** In registration order. *)

(** {1 Per-dataset accessors} *)

val name : dataset -> string
val grid : dataset -> Geometry.Grid.t
val pointset : dataset -> Geometry.Pointset.t
val index : dataset -> Geometry.Pointset.index
val accountant : dataset -> Accountant.t
val n : dataset -> int
val dim : dataset -> int

val r_opt_bounds : dataset -> t:int -> float * float
(** The cached [(r_lo, r_hi)] sandwich for target size [t]; computed on
    first request, then served from the cache.  Safe to call from worker
    domains. *)

val bounds_cache_stats : dataset -> int * int
(** [(lookups, hits)] of the r_opt-bounds cache — the reuse the registry
    exists to provide, surfaced for telemetry and tests. *)

val to_json : dataset -> Json.t
(** Shape, index backend, budget state, cache stats. *)
