lib/core/good_radius.mli: Format Geometry Prim Profile
