(* Benchmark harness: runs the experiment suite (E1–E14, one per table /
   figure / theorem claim — see EXPERIMENTS.md) followed by the Bechamel
   timing benches (B1–B7, one per pipeline stage) and the engine
   throughput bench (B8).

   Usage:
     dune exec bench/main.exe                 # full suite
     dune exec bench/main.exe -- --quick      # reduced trials/sweeps
     dune exec bench/main.exe -- --only E1,E4 # subset
     dune exec bench/main.exe -- --jobs 4     # experiments on 4 engine-pool domains
     dune exec bench/main.exe -- --no-timing  # experiments only
     dune exec bench/main.exe -- --timing-only *)

open Bechamel

let delta = Workload.Harness.default_delta
let beta = Workload.Harness.default_beta

(* A fixed midsize workload shared by all timing benches so their costs are
   comparable. *)
type fixture = {
  rng : Prim.Rng.t;
  grid : Geometry.Grid.t;
  points : Geometry.Vec.t array;
  idx : Geometry.Pointset.index;
  t : int;
  radius : float;
}

let fixture () =
  let rng = Prim.Rng.create ~seed:99 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.planted_ball rng ~grid ~n:1500 ~cluster_fraction:0.5 ~cluster_radius:0.05
  in
  let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Workload.Synth.points) in
  { rng; grid; points = w.Workload.Synth.points; idx; t = 600; radius = 0.1 }

let timing_tests fx =
  let profile = Privcluster.Profile.practical in
  [
    Test.make ~name:"B1 good-radius"
      (Staged.stage (fun () ->
           Privcluster.Good_radius.run fx.rng profile ~grid:fx.grid ~eps:2.0 ~delta ~beta
             ~t:fx.t fx.idx));
    Test.make ~name:"B2 good-center"
      (Staged.stage (fun () ->
           Privcluster.Good_center.run fx.rng profile ~eps:2.0 ~delta ~beta ~t:fx.t
             ~radius:fx.radius fx.points));
    Test.make ~name:"B3 rec-concave(1k)"
      (Staged.stage
         (let q =
            Recconcave.Quality.of_array
              (Array.init 1000 (fun i -> -.Float.abs (float_of_int (i - 700))))
          in
          fun () -> Recconcave.Rec_concave.solve fx.rng ~eps:1.0 q));
    Test.make ~name:"B4 jl-project"
      (Staged.stage
         (let jl = Geometry.Jl.make fx.rng ~input_dim:64 ~output_dim:16 in
          let v = Prim.Rng.gaussian_vector fx.rng ~dim:64 ~sigma:1.0 in
          fun () -> Geometry.Jl.apply jl v));
    Test.make ~name:"B5 stability-hist"
      (Staged.stage
         (let boxing = Geometry.Boxing.make fx.rng ~dim:2 ~len:(4. *. fx.radius) in
          fun () ->
            Prim.Stability_hist.select fx.rng ~eps:0.5 ~delta:1e-6
              (Geometry.Boxing.occupancy boxing fx.points)));
    Test.make ~name:"B6 noisy-avg"
      (Staged.stage (fun () ->
           Prim.Noisy_avg.run fx.rng ~eps:0.5 ~delta:1e-6 ~diameter:1.0
             ~pred:(fun p -> p.(0) < 0.5)
             ~dim:2 fx.points));
    Test.make ~name:"B7 one-cluster e2e"
      (Staged.stage (fun () ->
           Privcluster.One_cluster.run_indexed fx.rng profile ~grid:fx.grid ~eps:2.0 ~delta
             ~beta ~t:fx.t fx.idx));
  ]

let run_timing ~quick =
  Workload.Report.headline "B1-B7 - Bechamel timing benches (per-call wall clock)";
  let fx = fixture () in
  let quota = if quick then 0.5 else 2.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"privcluster" (timing_tests fx)) in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan in
      rows := (name, ns, r2) :: !rows)
    results;
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  Workload.Report.table
    ~header:[ "bench"; "time/call"; "r^2" ]
    (List.map
       (fun (name, ns, r2) ->
         let human =
           if Float.is_nan ns then "-"
           else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; human; Workload.Report.f3 r2 ])
       rows)

(* The experiment suite goes through the engine pool — the same worker-domain
   code path the CLI's batch subcommand uses — with each experiment's report
   output captured per domain and printed in suite order, so `--jobs 4`
   output diffs clean against `--jobs 1`. *)
let run_experiments ~jobs cfg selected =
  if jobs <= 1 then List.iter (Workload.Experiments.run_one cfg) selected
  else begin
    let tasks = Array.of_list (List.map Engine.Pool.task selected) in
    let outcomes =
      Engine.Pool.run ~domains:jobs
        ~f:(fun _ exp -> snd (Workload.Report.capture (fun () -> Workload.Experiments.run_one cfg exp)))
        tasks
    in
    Array.iteri
      (fun i outcome ->
        match outcome with
        | Engine.Pool.Done out -> print_string out
        | Engine.Pool.Failed msg ->
            let id, _, _ = tasks.(i).Engine.Pool.payload in
            Printf.printf "\n%s FAILED: %s\n" id msg
        | Engine.Pool.Timed_out _ -> ())
      outcomes;
    flush stdout
  end

(* B8 — throughput of the batch engine itself: a bag of identical 1-cluster
   jobs on the shared fixture, swept over worker-domain counts.  Also checks
   the engine's determinism claim: every domain count must produce the same
   outputs (per-job RNG streams are derived from the submission index). *)
let run_engine_bench ~quick ~max_jobs =
  Workload.Report.headline "B8 - engine throughput (one-cluster batch over worker domains)";
  Workload.Report.kv "hardware threads" (string_of_int (Domain.recommended_domain_count ()));
  let fx = fixture () in
  let n_jobs = if quick then 6 else 12 in
  let specs =
    List.init n_jobs (fun i ->
        {
          Engine.Job.id = Printf.sprintf "j%d" (i + 1);
          kind = Engine.Job.One_cluster { t_fraction = 0.4 };
          eps = 0.5;
          delta = 1e-7;
          beta;
          deadline_s = None;
        })
  in
  let domain_counts =
    List.sort_uniq compare (1 :: 2 :: 4 :: (if max_jobs > 1 then [ max_jobs ] else []))
  in
  let summaries = Hashtbl.create 4 in
  let rows =
    List.map
      (fun domains ->
        let service = Engine.Service.create ~domains ~seed:99 () in
        let dataset =
          Engine.Service.register service ~name:"bench" ~grid:fx.grid
            ~budget:(Prim.Dp.v ~eps:(float_of_int n_jobs) ~delta:1e-3)
            fx.points
        in
        let results, ms =
          Workload.Harness.time (fun () -> Engine.Service.run_batch service ~dataset specs)
        in
        Hashtbl.replace summaries domains
          (String.concat ";" (List.map Engine.Job.detail results));
        (domains, ms))
      domain_counts
  in
  let base_ms = match rows with (_, ms) :: _ -> ms | [] -> Float.nan in
  let deterministic =
    let reference = Hashtbl.find summaries (List.hd domain_counts) in
    List.for_all (fun d -> Hashtbl.find summaries d = reference) domain_counts
  in
  Workload.Report.table ~csv:"b8_engine_throughput"
    ~header:[ "domains"; "wall"; "jobs/s"; "speedup" ]
    (List.map
       (fun (domains, ms) ->
         [
           string_of_int domains;
           Printf.sprintf "%.0f ms" ms;
           Workload.Report.f2 (1000. *. float_of_int n_jobs /. ms);
           Workload.Report.f2 (base_ms /. ms);
         ])
       rows);
  Workload.Report.kv "outputs identical across domain counts"
    (if deterministic then "yes" else "NO (engine determinism bug)")

let () =
  let quick = ref false and only = ref [] and timing = ref true and experiments = ref true in
  let jobs = ref 1 in
  let csv = ref None in
  let seed = ref Workload.Experiments.default_cfg.Workload.Experiments.seed in
  let spec =
    [
      ("--quick", Arg.Set quick, "reduced trials and sweeps");
      ( "--only",
        Arg.String (fun s -> only := String.split_on_char ',' s),
        "comma-separated experiment ids (e.g. E1,E4); implies --no-timing" );
      ("--no-timing", Arg.Clear timing, "skip the Bechamel benches");
      ("--timing-only", Arg.Clear experiments, "only the Bechamel benches");
      ( "--jobs",
        Arg.Set_int jobs,
        "run the experiment suite on this many engine-pool worker domains (default 1)" );
      ("--seed", Arg.Set_int seed, "base RNG seed");
      ("--csv", Arg.String (fun d -> csv := Some d), "also write each table as CSV into this directory");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "privcluster bench";
  Workload.Report.set_csv_dir !csv;
  let cfg = { Workload.Experiments.quick = !quick; seed = !seed } in
  if !experiments then begin
    let selected =
      match !only with
      | [] -> Workload.Experiments.all
      | ids ->
          timing := false;
          List.filter (fun (id, _, _) -> List.mem id ids) Workload.Experiments.all
    in
    run_experiments ~jobs:!jobs cfg selected
  end;
  if !timing then begin
    run_timing ~quick:!quick;
    run_engine_bench ~quick:!quick ~max_jobs:!jobs
  end
