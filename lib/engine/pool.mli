(** A supervised fixed-size worker pool on OCaml 5 domains.

    [run] executes a batch of tasks on [domains] worker domains pulling
    from a shared queue (an atomic next-index counter plus a reschedule
    list for tasks orphaned by a worker death) and returns the outcomes
    {e in submission order}, regardless of which domain ran what or in
    what order tasks finished.

    Determinism: the pool passes each task's submission index (and attempt
    number) to the work function; callers that need reproducible
    randomness derive a per-task generator from that index with
    {!Prim.Rng.derive}, which depends only on the base seed and the index
    — never on scheduling, retries or restarts.  The engine's batch
    results are therefore bit-identical at 1 and at [N] domains, with or
    without crashes.

    {2 Failure handling}

    Three layers, from cheapest to heaviest:

    + {b Retries.} A task whose work function raises an ordinary
      exception is re-run {e in place} (same worker, same index) up to
      [retries] extra attempts, with capped exponential backoff
      ([backoff_s · 2^(attempt−1)], capped at 250 ms) between attempts.
      Only when every attempt has raised does the task report {!Failed}.
    + {b Supervision.} A work function that raises {!Worker_crash}
      simulates/propagates the death of its worker domain: the in-flight
      task is pushed onto the reschedule queue (its attempt count
      intact), a replacement domain is spawned, and the dead domain is
      reaped by the coordinator.  At most [max_restarts] replacements are
      spawned per batch (default [2·domains]); past that, a crash is
      absorbed as a plain {!Failed} on the in-flight task so the batch
      always terminates.  A 1-domain pool runs inline and "restarts" by
      continuing as its own replacement — the counters behave
      identically.
    + {b Deadlines} are per-task, measured from batch start, and
      {e cooperative}: a domain cannot preempt a running OCaml
      computation.  A task (or retry attempt) whose deadline has already
      passed is never started, and a task that finishes past its deadline
      has its result discarded; both report {!Timed_out}.  The pool
      itself never hangs on a deadline.

    [on_event] observes retries and worker restarts (for telemetry); it
    is called from worker domains and must be thread-safe. *)

type 'a task = { payload : 'a; deadline_s : float option }

val task : ?deadline_s:float -> 'a -> 'a task

type 'b outcome =
  | Done of 'b
  | Timed_out of { elapsed_ms : float }
      (** Deadline passed before the task (or a retry attempt) started,
          or the task finished past it (see the cooperative-deadline note
          above). *)
  | Failed of string
      (** Every attempt of the work function raised (the message is the
          last exception), or a crash landed after the restart budget was
          exhausted.  The failure is confined to the task. *)

val outcome_name : _ outcome -> string
(** ["ok"], ["timeout"], ["failed"]. *)

exception Worker_crash of string
(** Raising this from the work function kills the worker domain (the
    supervised path above).  {!Faults} raises it to inject worker deaths;
    a caller embedding the pool can use it to escalate any condition it
    considers worker-fatal. *)

type event =
  | Task_retry of { index : int; attempt : int }
      (** Attempt [attempt ≥ 1] of task [index] is about to run — counts
          both in-place retries and post-crash reschedules. *)
  | Worker_restart  (** A dead worker domain is being replaced. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8 — past the point of
    diminishing returns for this workload's memory-bound inner loops. *)

val run :
  ?retries:int ->
  ?backoff_s:float ->
  ?max_restarts:int ->
  ?on_event:(event -> unit) ->
  ?trace_parent:Obs.Span.id ->
  domains:int ->
  f:(index:int -> attempt:int -> 'a -> 'b) ->
  'a task array ->
  'b outcome array
(** [run ~domains ~f tasks] — [f ~index ~attempt payload] for every task;
    [domains] is clamped to [[1, Array.length tasks]]; [retries] extra
    attempts per task (default 0); [backoff_s] base backoff (default
    1 ms); [max_restarts] worker-replacement budget (default
    [2·domains]).  Blocks until the batch is drained.

    When tracing is enabled ({!Obs.Span.set_enabled}), retries and worker
    restarts additionally emit [cat="pool"] instant events parented under
    [trace_parent] (worker domains have no open span of their own). *)
