lib/geometry/grid.ml: Array Float Prim Vec
