lib/prim/exp_mech.ml: Array Rng
