(** Algorithm 5, NoisyAVG — private average of the vectors selected by a
    predicate (Appendix A).

    Given a multiset [V ⊆ R^d] and a predicate [g] whose accepted set has
    diameter at most [Δg] (Observation A.2), the mechanism releases
    [avg {v ∈ V : g v} + N(0, σ²)^d] where σ is calibrated from a *noisy*
    lower bound on the selected count — this is what makes the whole release
    [(ε, δ)]-DP even though the true count is data-dependent.  Returns [⊥]
    ([None]) when the noisy count is non-positive.

    The L2-sensitivity bound driving σ is the Appendix-A computation:
    neighbouring inputs change the selected average by at most [4Δg/(m+1)]
    in L2, where m is the selected count.

    GoodCenter's final step is exactly this mechanism applied to the points
    captured in the ball [C] (whose diameter is data-independent). *)

type success = {
  average : float array;  (** The noisy average (dimension = dimension of the inputs). *)
  m_hat : float;
      (** The noisy lower bound on the selected count (itself produced by a
          Laplace query inside the mechanism's budget, hence releasable). *)
  sigma : float;  (** The per-coordinate Gaussian noise level actually used. *)
}

type result =
  | Average of success
  | Bottom  (** The noisy count was non-positive; nothing is released. *)

val run :
  Rng.t ->
  eps:float ->
  delta:float ->
  diameter:float ->
  pred:(float array -> bool) ->
  dim:int ->
  float array array ->
  result
(** [run rng ~eps ~delta ~diameter ~pred ~dim vectors].  [diameter] is the
    promised bound [Δg] on the diameter of [{v : pred v}] — a data-independent
    quantity supplied by the caller (for GoodCenter it is the diameter of the
    bounding ball [C]).  [dim] is used only when the selected set is empty
    but the noisy count is positive, in which case the (noisy) zero vector is
    returned. *)

val run_rows :
  Rng.t ->
  eps:float ->
  delta:float ->
  diameter:float ->
  pred:(int -> bool) ->
  dim:int ->
  offs:int array ->
  float array ->
  result
(** Flat variant of {!run}: candidate [i] is the [dim]-length row of the
    storage array starting at element offset [offs.(i)], and [pred] selects
    by row index.  No vector is boxed; selection order, accumulation order
    and RNG draws are identical to {!run}, so equal inputs give bit-equal
    results. *)

val expected_sigma : eps:float -> delta:float -> diameter:float -> m:int -> float
(** The σ of Observation A.1 for a selected count of [m] (with the noisy
    count at its typical value): [(16·Δg/(ε·m))·√(2 ln(8/δ))] — useful for
    utility predictions in the experiment harness. *)
