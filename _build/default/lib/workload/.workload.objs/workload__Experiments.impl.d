lib/workload/experiments.ml: Array Baselines Float Format Geometry Harness Hashtbl List Metrics Prim Printf Privcluster Recconcave Report Synth
