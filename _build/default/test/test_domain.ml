(* Remark 3.3: arbitrary rectangular domains via affine rescaling. *)

open Testutil

let test_round_trip () =
  let dom =
    Privcluster.Domain.create ~lo:[| -10.; 100. |] ~hi:[| 30.; 120. |] ~axis_size:512
  in
  check_float "side is the longest axis" 40. (Privcluster.Domain.scale dom);
  let p = [| 5.; 110. |] in
  let u = Privcluster.Domain.to_unit dom p in
  check_in_range "unit x" ~lo:0. ~hi:1. u.(0);
  check_in_range "unit y" ~lo:0. ~hi:1. u.(1);
  let back = Privcluster.Domain.of_unit dom u in
  (* Round trip exact up to one grid step in data units. *)
  let step_data = Privcluster.Domain.radius_of_unit dom (Geometry.Grid.step (Privcluster.Domain.grid dom)) in
  check_true "round trip within a grid step" (Geometry.Vec.dist back p <= step_data +. 1e-9)

let test_radius_scaling () =
  let dom = Privcluster.Domain.create ~lo:[| 0. |] ~hi:[| 50. |] ~axis_size:64 in
  check_float "radius out" 5. (Privcluster.Domain.radius_of_unit dom 0.1);
  check_float "radius in" 0.1 (Privcluster.Domain.radius_to_unit dom 5.)

let test_of_points_covers () =
  let r = rng () in
  let points = Array.init 200 (fun _ -> [| Prim.Rng.uniform r ~lo:(-3.) ~hi:7.; Prim.Rng.uniform r ~lo:40. ~hi:45. |]) in
  let dom = Privcluster.Domain.of_points ~axis_size:256 points in
  Array.iter
    (fun p ->
      let u = Privcluster.Domain.to_unit dom p in
      Array.iter (fun x -> check_in_range "mapped inside" ~lo:0. ~hi:1. x) u)
    points

let test_clamping () =
  let dom = Privcluster.Domain.create ~lo:[| 0. |] ~hi:[| 1. |] ~axis_size:16 in
  let u = Privcluster.Domain.to_unit dom [| 99. |] in
  check_float "clamped" 1.0 u.(0)

let test_validation () =
  Alcotest.check_raises "lo < hi" (Invalid_argument "Domain.create: lo must be below hi on every axis")
    (fun () -> ignore (Privcluster.Domain.create ~lo:[| 1. |] ~hi:[| 1. |] ~axis_size:4));
  Alcotest.check_raises "empty" (Invalid_argument "Domain.of_points: empty") (fun () ->
      ignore (Privcluster.Domain.of_points ~axis_size:4 [||]))

let test_solve_on_shifted_data () =
  (* A cluster around (1000, -500) in a 200-wide box: the solver must find
     it in data coordinates. *)
  let r = rng ~seed:23 () in
  let center = [| 1000.; -500. |] in
  let n = 1500 in
  let points =
    Array.init n (fun i ->
        if i < 900 then
          Array.map (fun c -> c +. Prim.Rng.gaussian r ~sigma:2.0 ()) center
        else [| Prim.Rng.uniform r ~lo:900. ~hi:1100.; Prim.Rng.uniform r ~lo:(-600.) ~hi:(-400.) |])
  in
  let dom = Privcluster.Domain.create ~lo:[| 900.; -600. |] ~hi:[| 1100.; -400. |] ~axis_size:512 in
  match
    Privcluster.Domain.solve r Privcluster.Profile.practical dom ~eps:4.0 ~delta:1e-6 ~beta:0.1
      ~t:800 points
  with
  | Error f -> Alcotest.failf "domain solve failed: %a" Privcluster.One_cluster.pp_failure f
  | Ok result ->
      check_true
        (Printf.sprintf "center near (1000, -500): got (%.1f, %.1f)"
           result.Privcluster.Domain.center.(0) result.Privcluster.Domain.center.(1))
        (Geometry.Vec.dist result.Privcluster.Domain.center center < 30.);
      check_true "radius in data units" (result.Privcluster.Domain.radius < 200.);
      let covered =
        Array.fold_left
          (fun acc p ->
            if Geometry.Vec.dist p result.Privcluster.Domain.center <= result.Privcluster.Domain.radius
            then acc + 1 else acc)
          0 points
      in
      check_true (Printf.sprintf "covers the cluster (%d/800)" covered) (covered >= 700)

let suite =
  [
    case "round trip" test_round_trip;
    case "radius scaling" test_radius_scaling;
    case "of_points covers" test_of_points_covers;
    case "clamping" test_clamping;
    case "validation" test_validation;
    slow_case "solve on shifted data" test_solve_on_shifted_data;
  ]
