lib/geometry/jl.ml: Array Float Prim Vec
