test/test_interval_boxing.ml: Alcotest Array Geometry List Prim Printf QCheck2 Testutil
