(** Report-noisy-max: add iid Lap(2·s/ε) noise to each of a finite family of
    sensitivity-[s] scores and report the argmax.  [(ε, 0)]-DP regardless of
    the number of candidates.  Used by baselines where the exponential
    mechanism's exact distribution is not needed. *)

val argmax : Rng.t -> eps:float -> sensitivity:float -> float array -> int
(** Index of the noisy maximizer. *)

val argmax_value : Rng.t -> eps:float -> sensitivity:float -> float array -> int * float
(** Noisy maximizer together with its noisy score (the score itself is not
    part of the privacy guarantee of plain report-noisy-max; callers who
    release it should budget a separate Laplace query — see
    {!Laplace.scalar}). *)
