examples/private_mean_sa.mli:
