type partition = { p_shift : float; p_len : float }

let make rng ~len =
  if not (len > 0.) then invalid_arg "Interval.make: len must be positive";
  { p_shift = Prim.Rng.float rng len; p_len = len }

let fixed ~shift ~len =
  if not (len > 0.) then invalid_arg "Interval.fixed: len must be positive";
  { p_shift = shift; p_len = len }

let len p = p.p_len
let shift p = p.p_shift
let index_of p x = int_of_float (Float.floor ((x -. p.p_shift) /. p.p_len))

let bounds p j =
  let lo = p.p_shift +. (float_of_int j *. p.p_len) in
  (lo, lo +. p.p_len)

let extend p j ~by =
  let lo, hi = bounds p j in
  (lo -. by, hi +. by)

type t = { lo : float; hi : float }

let contains i x = i.lo <= x && x <= i.hi
let length i = i.hi -. i.lo
let center i = 0.5 *. (i.lo +. i.hi)
let of_center ~center ~radius = { lo = center -. radius; hi = center +. radius }

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None
