lib/geometry/boxing.ml: Array Interval List Prim Vec
