lib/recconcave/monotone_search.mli: Prim Quality
