test/test_kdtree.ml: Alcotest Array Float Geometry List Prim Printf Privcluster QCheck2 Testutil Workload
