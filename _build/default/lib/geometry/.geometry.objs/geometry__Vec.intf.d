lib/geometry/vec.mli: Format
