lib/geometry/pointset.ml: Array Float Kdtree List Vec
