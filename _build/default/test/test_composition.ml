(* Composition theorems (Theorem 2.1 and Theorem 4.7) and the accountant. *)

open Testutil

let test_basic () =
  let p = Prim.Dp.v ~eps:0.1 ~delta:1e-7 in
  let total = Prim.Composition.basic p ~k:10 in
  check_float ~tol:1e-12 "eps adds" 1.0 (Prim.Dp.eps total);
  check_float ~tol:1e-18 "delta adds" 1e-6 (Prim.Dp.delta total)

let test_basic_list () =
  let total =
    Prim.Composition.basic_list
      [ Prim.Dp.v ~eps:0.5 ~delta:1e-7; Prim.Dp.v ~eps:0.25 ~delta:2e-7; Prim.Dp.pure ~eps:0.25 ]
  in
  check_float ~tol:1e-12 "heterogeneous eps" 1.0 (Prim.Dp.eps total);
  check_float ~tol:1e-18 "heterogeneous delta" 3e-7 (Prim.Dp.delta total)

let test_advanced_formula () =
  let eps = 0.1 and k = 100 and delta' = 1e-6 in
  let total = Prim.Composition.advanced (Prim.Dp.pure ~eps) ~k ~delta' in
  let expected =
    (2. *. 100. *. 0.01) +. (0.1 *. sqrt (2. *. 100. *. log (1. /. delta')))
  in
  check_float ~tol:1e-9 "theorem 4.7" expected (Prim.Dp.eps total);
  check_float ~tol:1e-12 "delta = k·delta + delta'" delta' (Prim.Dp.delta total)

let test_advanced_beats_basic_for_many_mechanisms () =
  let p = Prim.Dp.pure ~eps:0.01 in
  let k = 2000 in
  let adv = Prim.Composition.advanced p ~k ~delta':1e-6 in
  let basic = Prim.Composition.basic p ~k in
  check_true "advanced is tighter at large k" (Prim.Dp.eps adv < Prim.Dp.eps basic)

let qcheck_advanced_per_mechanism_inverse =
  qcheck "advanced_per_mechanism inverts the bound" ~count:100
    QCheck2.Gen.(pair (float_range 0.1 3.0) (int_range 2 200))
    (fun (total_eps, k) ->
      let per = Prim.Composition.advanced_per_mechanism ~total_eps ~k ~delta':1e-7 in
      let back = Prim.Composition.advanced (Prim.Dp.pure ~eps:per) ~k ~delta':1e-7 in
      (* Within the bisection tolerance, recomposition must not exceed the
         target and must not be absurdly below it. *)
      Prim.Dp.eps back <= total_eps +. 1e-6 && Prim.Dp.eps back >= 0.9 *. total_eps)

let test_goodcenter_axis_budget_is_conservative () =
  (* The paper's per-axis parameter ε/(10√(d·ln(8/δ))) composed d times under
     Theorem 4.7 must stay within ε/4 (that's Lemma 4.11's accounting). *)
  let eps = 1.0 and delta = 1e-6 in
  List.iter
    (fun d ->
      let per = eps /. (10. *. sqrt (float_of_int d *. log (8. /. delta))) in
      let total = Prim.Composition.advanced (Prim.Dp.pure ~eps:per) ~k:d ~delta':(delta /. 8.) in
      check_true
        (Printf.sprintf "axis budget within eps/4 at d=%d" d)
        (Prim.Dp.eps total <= (eps /. 4.) +. 1e-9))
    [ 1; 2; 8; 64; 512 ]

let test_accountant () =
  let acc = Prim.Composition.accountant () in
  Prim.Composition.charge acc ~label:"a" (Prim.Dp.v ~eps:0.5 ~delta:1e-7);
  Prim.Composition.charge acc ~label:"b" (Prim.Dp.v ~eps:0.5 ~delta:1e-7);
  let total = Prim.Composition.spent_basic acc in
  check_float ~tol:1e-12 "spent eps" 1.0 (Prim.Dp.eps total);
  check_int "charge order" 2 (List.length (Prim.Composition.charges acc));
  check_true "labels kept" (fst (List.hd (Prim.Composition.charges acc)) = "a");
  let adv = Prim.Composition.spent_advanced acc ~delta':1e-8 in
  check_true "advanced computes" (Prim.Dp.eps adv > 0.);
  Prim.Composition.charge acc (Prim.Dp.pure ~eps:0.1);
  Alcotest.check_raises "heterogeneous advanced rejected"
    (Invalid_argument "Composition.spent_advanced: heterogeneous charges") (fun () ->
      ignore (Prim.Composition.spent_advanced acc ~delta':1e-8))

let test_subsample_amplify () =
  let p = Prim.Subsample.amplify ~eps:1.0 ~delta:1e-6 ~m:100 ~n:900 in
  check_float ~tol:1e-9 "eps scaled by 6m/n" (6. /. 9.) (Prim.Dp.eps p);
  check_float ~tol:1e-12 "delta formula"
    (exp (6. /. 9.) *. 4. *. (100. /. 900.) *. 1e-6)
    (Prim.Dp.delta p);
  check_float ~tol:1e-9 "factor" (6. /. 9.) (Prim.Subsample.amplification_factor ~m:100 ~n:900);
  (* Matches Sample_aggregate's n/9 instantiation. *)
  let sa = Privcluster.Sample_aggregate.amplified ~eps:1.0 ~delta:1e-6 in
  check_float ~tol:1e-9 "same eps as SA helper" (Prim.Dp.eps sa) (Prim.Dp.eps p);
  Alcotest.check_raises "eps <= 1" (Invalid_argument "Subsample.amplify: eps must be in (0, 1]")
    (fun () -> ignore (Prim.Subsample.amplify ~eps:2.0 ~delta:1e-6 ~m:1 ~n:10));
  Alcotest.check_raises "n >= 2m"
    (Invalid_argument "Subsample.amplification_factor: need n >= 2m") (fun () ->
      ignore (Prim.Subsample.amplify ~eps:0.5 ~delta:1e-6 ~m:10 ~n:15))

let test_validation () =
  Alcotest.check_raises "k>0" (Invalid_argument "Composition.basic: k must be positive")
    (fun () -> ignore (Prim.Composition.basic (Prim.Dp.pure ~eps:1.) ~k:0));
  Alcotest.check_raises "empty list" (Invalid_argument "Composition.basic_list: empty")
    (fun () -> ignore (Prim.Composition.basic_list []))

let suite =
  [
    case "basic composition" test_basic;
    case "heterogeneous basic" test_basic_list;
    case "advanced formula" test_advanced_formula;
    case "advanced beats basic at large k" test_advanced_beats_basic_for_many_mechanisms;
    qcheck_advanced_per_mechanism_inverse;
    case "GoodCenter axis budget fits eps/4" test_goodcenter_axis_budget_is_conservative;
    case "accountant" test_accountant;
    case "subsampling amplification" test_subsample_amplify;
    case "validation" test_validation;
  ]
