module Json = Engine.Json
module Hist = Obs.Hist
module Slo = Obs.Slo

(* Sliding ε-spend window for one (tenant, dataset). *)
type burn_window = {
  mutable budget_eps : float;
  mutable samples : (int64 * float) list;  (* (t_ns, composed spend), newest first *)
}

type t = {
  mu : Mutex.t;
  requests : (string * string, Hist.t) Hashtbl.t;  (* (verb, tenant) *)
  waits : (string, Hist.t) Hashtbl.t;  (* verb *)
  burns : (string * string, burn_window) Hashtbl.t;  (* (tenant, dataset) *)
  mutable submitted : int;
  mutable shed_queue_full : int;
  mutable shed_tenant_cap : int;
  mutable shed_draining : int;
  shards : int;
  sample_every : int;
  slow_threshold_ns : int;
  slow_log : string option;
  slow_keep : int;
  rules : Slo.rule list;
}

let burn_window_ns = 3_600_000_000_000L (* 1 h *)
let burn_floor_ns = 300_000_000_000L (* 5 min: pace of a fresh burst *)

let burn_spacing_ns = 1_000_000_000L
(* Samples younger than this coalesce into the newest one, which caps a
   window at [burn_window_ns / burn_spacing_ns] (+1 baseline) entries no
   matter the request rate, and makes the hot path O(1): the O(window)
   prune below only runs when a new sample is actually appended, at most
   once per spacing interval. *)

let create ?(shards = 8) ?(sample_every = 0) ?(slow_threshold_ms = 250.)
    ?slow_log ?(slow_keep = 64) ?(rules = Slo.default_rules) () =
  {
    mu = Mutex.create ();
    requests = Hashtbl.create 32;
    waits = Hashtbl.create 16;
    burns = Hashtbl.create 16;
    submitted = 0;
    shed_queue_full = 0;
    shed_tenant_cap = 0;
    shed_draining = 0;
    shards;
    sample_every = max 0 sample_every;
    slow_threshold_ns = int_of_float (Float.max 0. slow_threshold_ms *. 1e6);
    slow_log;
    slow_keep = max 1 slow_keep;
    rules;
  }

let sample_every t = t.sample_every
let slow_threshold_ns t = t.slow_threshold_ns
let slow_log_dir t = t.slow_log
let rules t = t.rules

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Find-or-create under the mutex; the subsequent observe is lock-free.
   The table only ever grows, keyed by a small closed set of verbs ×
   authenticated tenants, so it stays tiny. *)
let hist_for t tbl key =
  locked t (fun () ->
      match Hashtbl.find_opt tbl key with
      | Some h -> h
      | None ->
          let h = Hist.create ~shards:t.shards () in
          Hashtbl.add tbl key h;
          h)

let record_request t ~verb ~tenant ~ns =
  Hist.observe_ns (hist_for t t.requests (verb, tenant)) ns

let record_queue_wait t ~verb ~ns = Hist.observe_ns (hist_for t t.waits verb) ns

let record_submit t = locked t (fun () -> t.submitted <- t.submitted + 1)

let record_shed t reason =
  locked t (fun () ->
      match reason with
      | Wire.Queue_full -> t.shed_queue_full <- t.shed_queue_full + 1
      | Wire.Tenant_cap -> t.shed_tenant_cap <- t.shed_tenant_cap + 1
      | Wire.Draining -> t.shed_draining <- t.shed_draining + 1)

let record_burn t ~tenant ~dataset ~budget_eps ~spent_eps ~now_ns =
  locked t (fun () ->
      let w =
        match Hashtbl.find_opt t.burns (tenant, dataset) with
        | Some w -> w
        | None ->
            let w = { budget_eps; samples = [] } in
            Hashtbl.add t.burns (tenant, dataset) w;
            w
      in
      w.budget_eps <- budget_eps;
      match w.samples with
      | (t_head, _) :: rest when Int64.compare (Int64.sub now_ns t_head) burn_spacing_ns < 0
        ->
          (* Within the coalescing interval: refresh the newest sample in
             place instead of growing the window. *)
          w.samples <- (now_ns, spent_eps) :: rest
      | _ ->
          let horizon = Int64.sub now_ns burn_window_ns in
          let keep, old =
            List.partition (fun (ts, _) -> Int64.compare ts horizon >= 0) w.samples
          in
          (* Keep one sample beyond the horizon as the window's baseline, so
             a spend that happened 59 minutes ago still shows its
             increment. *)
          let baseline = match old with s :: _ -> [ s ] | [] -> [] in
          w.samples <- ((now_ns, spent_eps) :: keep) @ baseline)

(* --- deterministic head sampling ----------------------------------------- *)

let fnv1a s =
  let offset_basis = 0xcbf29ce484222325L and prime = 0x100000001b3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let sampled t ~key =
  t.sample_every > 0
  && Int64.rem (Int64.logand (fnv1a key) Int64.max_int)
       (Int64.of_int t.sample_every)
     = 0L

(* --- exemplar ring -------------------------------------------------------- *)

let exemplar_prefix = "exemplar-"

let exemplar_files t =
  match t.slow_log with
  | None -> []
  | Some dir -> (
      match Sys.readdir dir with
      | exception Sys_error _ -> []
      | entries ->
          Array.to_list entries
          |> List.filter (fun f -> String.starts_with ~prefix:exemplar_prefix f)
          |> List.sort compare
          |> List.map (fun f -> Filename.concat dir f))

let sanitize_component s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_') as c -> c | _ -> '_')
    s

let write_exemplar t ~verb ~seq ~reason ~json =
  match t.slow_log with
  | None -> ()
  | Some dir ->
      locked t (fun () ->
          try
            if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
            (* Zero-padded sequence numbers make lexicographic order the
               age order, which is what the pruning below relies on. *)
            let name =
              Printf.sprintf "%s%08d-%s-%s.trace.json" exemplar_prefix seq
                (sanitize_component reason) (sanitize_component verb)
            in
            let path = Filename.concat dir name in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc json);
            let files =
              Sys.readdir dir |> Array.to_list
              |> List.filter (fun f -> String.starts_with ~prefix:exemplar_prefix f)
              |> List.sort compare
            in
            let excess = List.length files - t.slow_keep in
            if excess > 0 then
              List.iteri
                (fun i f ->
                  if i < excess then
                    try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
                files
          with Sys_error _ | Unix.Unix_error (_, _, _) -> ())

(* --- views ---------------------------------------------------------------- *)

let request_rows t =
  locked t (fun () ->
      Hashtbl.fold (fun (v, tn) h acc -> (v, tn, h) :: acc) t.requests [])
  |> List.map (fun (v, tn, h) -> (v, tn, Hist.snapshot h))
  |> List.sort compare

let wait_rows t =
  locked t (fun () -> Hashtbl.fold (fun v h acc -> (v, h) :: acc) t.waits [])
  |> List.map (fun (v, h) -> (v, Hist.snapshot h))
  |> List.sort compare

let burn_rate ~now_ns (w : burn_window) =
  match List.rev w.samples with
  | [] | [ _ ] -> 0.
  | (t0, s0) :: _ ->
      let t1, s1 = List.hd w.samples in
      let dspend = Float.max 0. (s1 -. s0) in
      ignore t1;
      let span_ns = Int64.sub now_ns t0 in
      let span_ns =
        if Int64.compare span_ns burn_floor_ns < 0 then burn_floor_ns else span_ns
      in
      if w.budget_eps <= 0. then 0.
      else
        let hours = Int64.to_float span_ns /. 3.6e12 in
        dspend /. w.budget_eps /. hours

let burn_rows t ~now_ns =
  locked t (fun () ->
      Hashtbl.fold
        (fun (tn, ds) w acc -> (tn, ds, burn_rate ~now_ns w) :: acc)
        t.burns [])
  |> List.sort compare

let shed_rows t =
  locked t (fun () ->
      [
        (Wire.shed_reason_name Wire.Queue_full, t.shed_queue_full);
        (Wire.shed_reason_name Wire.Tenant_cap, t.shed_tenant_cap);
        (Wire.shed_reason_name Wire.Draining, t.shed_draining);
      ])

let submissions t = locked t (fun () -> t.submitted)

let observations t ~now_ns =
  {
    Slo.latencies =
      (fun () ->
        (* Merge tenants: SLO latency targets are per verb. *)
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (v, _tn, h) ->
            let cur = Option.value ~default:Hist.empty (Hashtbl.find_opt tbl v) in
            Hashtbl.replace tbl v (Hist.merge cur h))
          (request_rows t);
        Hashtbl.fold (fun v h acc -> (v, h) :: acc) tbl [] |> List.sort compare);
    burn_rates = (fun () -> burn_rows t ~now_ns);
    shed_rate =
      (fun () ->
        let total = submissions t in
        if total = 0 then (0., 0)
        else
          let shed = List.fold_left (fun a (_, n) -> a + n) 0 (shed_rows t) in
          (float_of_int shed /. float_of_int total, total));
  }

let health t ~now_ns = Slo.eval_all (observations t ~now_ns) t.rules

let stats_json t ~now_ns =
  let requests =
    List.map
      (fun (v, tn, h) ->
        Json.Obj
          (("verb", Json.String v) :: ("tenant", Json.String tn)
          :: (match Hist.to_json h with Json.Obj fs -> fs | other -> [ ("hist", other) ])))
      (request_rows t)
  in
  let waits =
    List.map
      (fun (v, h) ->
        Json.Obj
          (("verb", Json.String v)
          :: (match Hist.to_json h with Json.Obj fs -> fs | other -> [ ("hist", other) ])))
      (wait_rows t)
  in
  let burns =
    List.map
      (fun (tn, ds, rate) ->
        Json.Obj
          [
            ("tenant", Json.String tn);
            ("dataset", Json.String ds);
            ("per_hour", Json.Float rate);
          ])
      (burn_rows t ~now_ns)
  in
  Json.Obj
    [
      ("serving_stats", Json.Bool true);
      ("requests", Json.List requests);
      ("queue_wait", Json.List waits);
      ("burn_rates", Json.List burns);
      ( "sheds",
        Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) (shed_rows t)) );
      ("submissions", Json.Int (submissions t));
      ("sample_every", Json.Int t.sample_every);
      ("slow_threshold_ms", Json.Float (float_of_int t.slow_threshold_ns /. 1e6));
      ("exemplars", Json.Int (List.length (exemplar_files t)));
    ]
