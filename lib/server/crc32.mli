(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).

    Used to frame WAL records so a torn or bit-rotted write is detected at
    replay instead of silently corrupting the privacy ledger.  The project
    deliberately has no compression/checksum dependency; this is the
    standard reflected table-driven implementation (~20 lines). *)

val string : string -> int32
(** CRC-32 of a whole string. *)

val to_hex : int32 -> string
(** Lower-case 8-digit hex, the WAL's frame encoding. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
