module Json = Engine.Json
module Accountant = Engine.Accountant

let version = 1

type request =
  | Hello of { version : int; tenant : string; token : string }
  | Register of {
      dataset : string;
      n : int;
      dim : int;
      axis : int;
      frac : float;
      radius : float;
      seed : int;
      budget : Prim.Dp.params;
      mode : Accountant.mode;
    }
  | Run of { dataset : string; jobs : string; seed : int option }
  | Append of { dataset : string; n : int; seed : int; frac : float; radius : float }
  | Retire of { dataset : string; from_ : int; count : int }
  | Epoch of { dataset : string }
  | Standing of {
      dataset : string;
      id : string;
      t_fraction : float;
      eps : float;
      delta : float;
      periods : int;
      seed : int option;
    }
  | Settle of { dataset : string; action : settle_action; label : string option }
  | Ledger of { dataset : string }
  | Datasets
  | Metrics
  | Health
  | Stats
  | Ping

and settle_action = Commit_orphans | Release_orphans

type envelope = { rid : int; request : request }

let request_name = function
  | Hello _ -> "hello"
  | Register _ -> "register"
  | Run _ -> "run"
  | Append _ -> "append"
  | Retire _ -> "retire"
  | Epoch _ -> "epoch"
  | Standing _ -> "standing"
  | Settle _ -> "settle"
  | Ledger _ -> "ledger"
  | Datasets -> "datasets"
  | Metrics -> "metrics"
  | Health -> "health"
  | Stats -> "stats"
  | Ping -> "ping"

let settle_action_name = function
  | Commit_orphans -> "commit"
  | Release_orphans -> "release"

let settle_action_of_string = function
  | "commit" -> Some Commit_orphans
  | "release" -> Some Release_orphans
  | _ -> None

type shed_reason = Queue_full | Tenant_cap | Draining

type error_code =
  | Bad_request
  | Unsupported_version
  | Unauthorized
  | Unknown_dataset
  | Conflict
  | Rejected of shed_reason
  | Internal

type error = { code : error_code; message : string }

let shed_reason_name = function
  | Queue_full -> "queue_full"
  | Tenant_cap -> "tenant_cap"
  | Draining -> "draining"

let code_name = function
  | Bad_request -> "bad_request"
  | Unsupported_version -> "unsupported_version"
  | Unauthorized -> "unauthorized"
  | Unknown_dataset -> "unknown_dataset"
  | Conflict -> "conflict"
  | Rejected _ -> "rejected"
  | Internal -> "internal"

(* --- requests ----------------------------------------------------------- *)

let mode_fields mode =
  ("mode", Json.String (Accountant.mode_name mode))
  ::
  (match mode with
  | Accountant.Basic -> []
  | Accountant.Advanced { slack } | Accountant.Zcdp { slack } ->
      [ ("slack", Json.Float slack) ])

let request_to_line { rid; request } =
  let fields =
    match request with
    | Hello { version; tenant; token } ->
        [ ("req", Json.String "hello"); ("version", Json.Int version);
          ("tenant", Json.String tenant); ("token", Json.String token);
        ]
    | Register { dataset; n; dim; axis; frac; radius; seed; budget; mode } ->
        [ ("req", Json.String "register"); ("dataset", Json.String dataset);
          ("n", Json.Int n); ("dim", Json.Int dim); ("axis", Json.Int axis);
          ("frac", Json.Float frac); ("radius", Json.Float radius);
          ("seed", Json.Int seed);
          ("budget_eps", Json.Float budget.Prim.Dp.eps);
          ("budget_delta", Json.Float budget.Prim.Dp.delta);
        ]
        @ mode_fields mode
    | Run { dataset; jobs; seed } ->
        [ ("req", Json.String "run"); ("dataset", Json.String dataset);
          ("jobs", Json.String jobs);
        ]
        @ (match seed with None -> [] | Some s -> [ ("seed", Json.Int s) ])
    | Append { dataset; n; seed; frac; radius } ->
        [ ("req", Json.String "append"); ("dataset", Json.String dataset);
          ("n", Json.Int n); ("seed", Json.Int seed); ("frac", Json.Float frac);
          ("radius", Json.Float radius);
        ]
    | Retire { dataset; from_; count } ->
        [ ("req", Json.String "retire"); ("dataset", Json.String dataset);
          ("from", Json.Int from_); ("count", Json.Int count);
        ]
    | Epoch { dataset } ->
        [ ("req", Json.String "epoch"); ("dataset", Json.String dataset) ]
    | Standing { dataset; id; t_fraction; eps; delta; periods; seed } ->
        [ ("req", Json.String "standing"); ("dataset", Json.String dataset);
          ("job", Json.String id); ("t_fraction", Json.Float t_fraction);
          ("eps", Json.Float eps); ("delta", Json.Float delta);
          ("periods", Json.Int periods);
        ]
        @ (match seed with None -> [] | Some s -> [ ("seed", Json.Int s) ])
    | Settle { dataset; action; label } ->
        [ ("req", Json.String "settle"); ("dataset", Json.String dataset);
          ("action", Json.String (settle_action_name action));
        ]
        @ (match label with None -> [] | Some l -> [ ("label", Json.String l) ])
    | Ledger { dataset } ->
        [ ("req", Json.String "ledger"); ("dataset", Json.String dataset) ]
    | Datasets -> [ ("req", Json.String "datasets") ]
    | Metrics -> [ ("req", Json.String "metrics") ]
    | Health -> [ ("req", Json.String "health") ]
    | Stats -> [ ("req", Json.String "stats") ]
    | Ping -> [ ("req", Json.String "ping") ]
  in
  Json.to_string ~indent:false (Json.Obj (("id", Json.Int rid) :: fields)) ^ "\n"

let bad fmt = Printf.ksprintf (fun m -> Error { code = Bad_request; message = m }) fmt

let field conv name json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> bad "missing or malformed field %S" name

let field_or default conv name json =
  match Json.member name json with None -> Ok default | Some _ -> field conv name json

let ( let* ) = Result.bind

let request_of_json json =
  let* req = field Json.to_str "req" json in
  match req with
  | "hello" ->
      let* version = field Json.to_int "version" json in
      let* tenant = field Json.to_str "tenant" json in
      let* token = field Json.to_str "token" json in
      Ok (Hello { version; tenant; token })
  | "register" ->
      let* dataset = field Json.to_str "dataset" json in
      let* n = field Json.to_int "n" json in
      let* dim = field_or 2 Json.to_int "dim" json in
      let* axis = field_or 256 Json.to_int "axis" json in
      let* frac = field_or 0.5 Json.to_float "frac" json in
      let* radius = field_or 0.05 Json.to_float "radius" json in
      let* seed = field_or 1 Json.to_int "seed" json in
      let* eps = field Json.to_float "budget_eps" json in
      let* delta = field Json.to_float "budget_delta" json in
      let* mode_s = field_or "basic" Json.to_str "mode" json in
      let* slack = field_or 1e-9 Json.to_float "slack" json in
      let* mode =
        match Accountant.mode_of_string ~slack mode_s with
        | Ok m -> Ok m
        | Error e -> bad "%s" e
      in
      Ok
        (Register
           { dataset; n; dim; axis; frac; radius; seed;
             budget = { Prim.Dp.eps; delta }; mode;
           })
  | "run" ->
      let* dataset = field Json.to_str "dataset" json in
      let* jobs = field Json.to_str "jobs" json in
      let* seed =
        match Json.member "seed" json with
        | None -> Ok None
        | Some _ -> Result.map Option.some (field Json.to_int "seed" json)
      in
      Ok (Run { dataset; jobs; seed })
  | "append" ->
      let* dataset = field Json.to_str "dataset" json in
      let* n = field Json.to_int "n" json in
      let* seed = field Json.to_int "seed" json in
      let* frac = field_or 0.5 Json.to_float "frac" json in
      let* radius = field_or 0.05 Json.to_float "radius" json in
      Ok (Append { dataset; n; seed; frac; radius })
  | "retire" ->
      let* dataset = field Json.to_str "dataset" json in
      let* from_ = field Json.to_int "from" json in
      let* count = field Json.to_int "count" json in
      Ok (Retire { dataset; from_; count })
  | "epoch" ->
      let* dataset = field Json.to_str "dataset" json in
      Ok (Epoch { dataset })
  | "standing" ->
      let* dataset = field Json.to_str "dataset" json in
      let* id = field Json.to_str "job" json in
      let* t_fraction = field Json.to_float "t_fraction" json in
      let* eps = field Json.to_float "eps" json in
      let* delta = field Json.to_float "delta" json in
      let* periods = field Json.to_int "periods" json in
      let* seed =
        match Json.member "seed" json with
        | None -> Ok None
        | Some _ -> Result.map Option.some (field Json.to_int "seed" json)
      in
      Ok (Standing { dataset; id; t_fraction; eps; delta; periods; seed })
  | "settle" ->
      let* dataset = field Json.to_str "dataset" json in
      let* action_s = field Json.to_str "action" json in
      let* action =
        match settle_action_of_string action_s with
        | Some a -> Ok a
        | None -> bad "unknown settle action %S (want \"commit\" or \"release\")" action_s
      in
      let* label =
        match Json.member "label" json with
        | None -> Ok None
        | Some _ -> Result.map Option.some (field Json.to_str "label" json)
      in
      Ok (Settle { dataset; action; label })
  | "ledger" ->
      let* dataset = field Json.to_str "dataset" json in
      Ok (Ledger { dataset })
  | "datasets" -> Ok Datasets
  | "metrics" -> Ok Metrics
  | "health" -> Ok Health
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | other -> bad "unknown request %S" other

let request_of_line line =
  match Json.parse line with
  | Error e -> bad "not a JSON object: %s" e
  | Ok json ->
      let* rid = field Json.to_int "id" json in
      let* request = request_of_json json in
      Ok { rid; request }

let rid_of_line line =
  match Json.parse line with
  | Ok json -> Option.value ~default:0 (Option.bind (Json.member "id" json) Json.to_int)
  | Error _ -> 0

(* --- replies ------------------------------------------------------------ *)

let error_json e =
  let base =
    [ ("code", Json.String (code_name e.code)); ("message", Json.String e.message) ]
  in
  let reason =
    match e.code with
    | Rejected r -> [ ("reason", Json.String (shed_reason_name r)) ]
    | _ -> []
  in
  (* Every error reply is produced before any ledger operation; [charged]
     states that contract on the wire so a shed client need not trust the
     documentation. *)
  Json.Obj (base @ reason @ [ ("charged", Json.Bool false) ])

let reply_to_line ~rid body =
  let fields =
    match body with
    | Ok (Json.Obj payload) -> (("ok", Json.Bool true) :: payload)
    | Ok other -> [ ("ok", Json.Bool true); ("result", other) ]
    | Error e -> [ ("ok", Json.Bool false); ("error", error_json e) ]
  in
  Json.to_string ~indent:false (Json.Obj (("id", Json.Int rid) :: fields)) ^ "\n"

let code_of_name ~reason = function
  | "bad_request" -> Some Bad_request
  | "unsupported_version" -> Some Unsupported_version
  | "unauthorized" -> Some Unauthorized
  | "unknown_dataset" -> Some Unknown_dataset
  | "conflict" -> Some Conflict
  | "internal" -> Some Internal
  | "rejected" -> (
      match reason with
      | Some "queue_full" -> Some (Rejected Queue_full)
      | Some "tenant_cap" -> Some (Rejected Tenant_cap)
      | Some "draining" -> Some (Rejected Draining)
      | _ -> None)
  | _ -> None

let reply_of_line line =
  match Json.parse line with
  | Error e -> Error ("not a JSON reply: " ^ e)
  | Ok json -> (
      match
        ( Option.bind (Json.member "id" json) Json.to_int,
          Json.member "ok" json )
      with
      | Some rid, Some (Json.Bool true) -> Ok (rid, Ok json)
      | Some rid, Some (Json.Bool false) -> (
          match Json.member "error" json with
          | Some err -> (
              let name = Option.bind (Json.member "code" err) Json.to_str in
              let reason = Option.bind (Json.member "reason" err) Json.to_str in
              let message =
                Option.value ~default:""
                  (Option.bind (Json.member "message" err) Json.to_str)
              in
              match Option.bind name (fun n -> code_of_name ~reason n) with
              | Some code -> Ok (rid, Error { code; message })
              | None -> Error "reply error object has an unknown code")
          | None -> Error "reply has ok=false but no error object")
      | _ -> Error "reply is missing id or ok")

(* --- settle reply -------------------------------------------------------- *)

type settled_reservation = { label : string; eps : float; delta : float }

type settle_reply = {
  action : settle_action;
  settled : settled_reservation list;
  remaining : int;
}

let settle_reply_to_json r =
  Json.Obj
    [
      ("action", Json.String (settle_action_name r.action));
      ( "settled",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("label", Json.String s.label);
                   ("eps", Json.Float s.eps);
                   ("delta", Json.Float s.delta);
                 ])
             r.settled) );
      ("remaining", Json.Int r.remaining);
    ]

let settle_reply_of_json json =
  let get j conv name =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "settle reply: missing or malformed %S" name)
  in
  let* action_s = get json Json.to_str "action" in
  let* action =
    match settle_action_of_string action_s with
    | Some a -> Ok a
    | None -> Error (Printf.sprintf "settle reply: unknown action %S" action_s)
  in
  let* entries = get json Json.to_list "settled" in
  let* settled =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* label = get j Json.to_str "label" in
        let* eps = get j Json.to_float "eps" in
        let* delta = get j Json.to_float "delta" in
        Ok ({ label; eps; delta } :: acc))
      (Ok []) entries
    |> Result.map List.rev
  in
  let* remaining = get json Json.to_int "remaining" in
  Ok { action; settled; remaining }
