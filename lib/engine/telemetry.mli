(** Engine observability: per-job-kind counters and latency histograms.

    Worker domains record one observation per finished job; recording is
    mutex-protected and cheap (a few counter bumps).  Latencies land in
    fixed log-spaced buckets (1 ms … 60 s), from which quantiles are
    estimated by linear interpolation inside the bucket — the standard
    Prometheus-style tradeoff: bounded memory, ~bucket-width error.

    Every record also emits a [Logs] debug span on the
    ["privcluster.engine"] source, so setting a reporter at debug level
    yields a per-job trace without touching the engine. *)

type t

val create : unit -> t

val log_src : Logs.src
(** The ["privcluster.engine"] source (shared with {!Service}). *)

val record : t -> kind:string -> status:string -> latency_ms:float -> unit
(** Thread-safe.  [kind] is the job kind name (["one_cluster"], …);
    [status] is ["ok"], ["refused"], ["timeout"], ["failed"] or
    ["degraded"]. *)

val incr : t -> string -> unit
(** Thread-safe named event counter (+1).  The engine uses ["retries"]
    (a job attempt was re-run after a crash), ["worker_restarts"] (a dead
    worker domain was replaced) and ["degraded"] (a job fell back to its
    cheaper solver); callers may add their own names. *)

val counter : t -> string -> int
(** Current value of a named counter; [0] when never incremented. *)

val counters : t -> (string * int) list
(** All named counters, sorted by name. *)

val total : t -> int
(** Observations recorded so far. *)

val count : t -> ?kind:string -> ?status:string -> unit -> int
(** Observations matching both filters (absent filter = match all). *)

val quantile_ms : t -> kind:string -> q:float -> float
(** Estimated latency quantile for a kind; [nan] when nothing recorded. *)

val quantile_of_buckets :
  ?max_ms:float -> buckets:int array -> observations:int -> q:float -> unit -> float
(** The same estimator over a raw bucket snapshot (the {!export_stats}
    layout: {!bucket_upper_bounds} buckets plus overflow), so renderers
    working from an exported or journaled snapshot — {!Exposition}'s
    post-hoc path — agree with the live {!quantile_ms}.  [max_ms] caps
    interpolation inside the overflow bucket (defaults to the last
    bound). *)

(** {2 Exposition}

    A plain snapshot of the per-kind stats, for renderers that cannot
    reach inside the mutex-protected tables ({!Exposition} turns it into
    Prometheus text). *)

type export_stats = {
  kind : string;
  statuses : (string * int) list;  (** Sorted by status name. *)
  buckets : int array;
      (** Per-bucket (non-cumulative) latency counts; the last entry is
          the overflow bucket beyond {!bucket_upper_bounds}. *)
  observations : int;
  total_ms : float;
}

val bucket_upper_bounds : float array
(** Upper bounds (ms) of the latency buckets, ascending; the overflow
    bucket is implicit. *)

val export : t -> export_stats list
(** Thread-safe snapshot, sorted by kind. *)

val to_json : t -> Json.t
(** Per-kind: counts by status, min/mean/max latency, p50/p90/p99, and the
    raw bucket counts (upper bounds included so the dump is
    self-describing). *)

val pp_summary : Format.formatter -> t -> unit
(** Compact human summary, one line per kind. *)
