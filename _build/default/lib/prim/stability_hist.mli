(** Stability-based histogram — the "choosing mechanism" of Theorem 2.5
    ([BNS13], [Vadhan 2016]).

    Given a partition [P] of the data universe (presented as a key function),
    privately return a cell containing approximately the maximum number of
    input elements.  Crucially the guarantee does not depend on the number of
    cells [|P|], which may be countably infinite (GoodCenter partitions R^k
    into infinitely many boxes): only non-empty cells are ever materialized,
    and the Laplace + threshold construction keeps [(ε, δ)]-DP because a
    neighboring database can only create/destroy one cell, whose noisy count
    crosses the release threshold with probability ≤ δ.

    Utility (Theorem 2.5): if the max cell holds [T ≥ (2/ε)·log(4n/(βδ))]
    elements then with probability ≥ 1 − β the returned cell holds at least
    [T − (4/ε)·log(2n/β)] elements. *)

type 'k cell = { key : 'k; count : int; noisy_count : float }

val release_threshold : eps:float -> delta:float -> float
(** The smallest noisy count at which a cell may be released:
    [1 + (2/ε)·ln(2/δ)]. *)

val count_by : key:('a -> 'k) -> 'a array -> ('k * int) list
(** Group the data by key; only non-empty cells appear.  Keys are compared
    with structural equality (polymorphic hashing). *)

val select :
  Rng.t -> eps:float -> delta:float -> ('k * int) list -> 'k cell option
(** Add Lap(2/ε) to each non-empty cell's count and return the noisy argmax
    if it clears {!release_threshold}, else [None].  [(ε, δ)]-DP. *)

val select_by :
  Rng.t -> eps:float -> delta:float -> key:('a -> 'k) -> 'a array -> 'k cell option
(** [count_by] followed by [select]. *)

val heavy_cells :
  Rng.t -> eps:float -> delta:float -> ('k * int) list -> 'k cell list
(** All cells whose noisy count clears the threshold, best first — the full
    histogram-release variant (used by the threshold-release baseline). *)

val utility_requirement : eps:float -> delta:float -> n:int -> beta:float -> float
(** The [T ≥ (2/ε)·log(4n/(βδ))] bound of Theorem 2.5. *)

val utility_loss : eps:float -> n:int -> beta:float -> float
(** The [(4/ε)·log(2n/β)] loss of Theorem 2.5. *)
