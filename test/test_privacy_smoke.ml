(* Empirical differential-privacy smoke tests, on the Check estimators.

   These do not prove privacy (no finite test can — see TESTING.md), but
   they catch gross calibration bugs with a statistically sound verdict:
   for a pair of neighbouring databases the Check.Distinguisher estimates
   event probabilities on both sides with exact Clopper–Pearson intervals,
   and declares a violation only when the confidence bounds themselves
   break e^ε·(1+slack) + δ.  A broken noise scale (for instance Lap(1/2ε)
   instead of Lap(2/ε)) is flagged immediately; a correctly calibrated
   mechanism passes at any seed with probability ≥ 1 − α per event. *)

open Testutil

let trials = 30_000

let fail_verdict name (v : Check.Distinguisher.verdict) =
  Alcotest.failf "%s: %a" name Check.Distinguisher.pp_verdict v

let assert_private name (v : Check.Distinguisher.verdict) =
  if v.Check.Distinguisher.violation then fail_verdict name v

let assert_flagged name (v : Check.Distinguisher.verdict) =
  if not v.Check.Distinguisher.violation then fail_verdict name v

(* Laplace counting on neighbouring counts 50 / 51: no violation, and the
   distinguisher should certify a substantial share of the claimed loss
   (the densest threshold events sit right at the e^ε ratio). *)
let test_laplace_count r =
  let eps = 0.5 in
  let v =
    Check.Distinguisher.run r ~claimed:(Prim.Dp.pure ~eps) ~trials
      ~events:(Check.Distinguisher.thresholds ~lo:44. ~hi:58. ~count:15)
      ~left:(fun r -> Prim.Laplace.count r ~eps 50)
      ~right:(fun r -> Prim.Laplace.count r ~eps 51)
      ()
  in
  assert_private "laplace count" v;
  check_true
    (Printf.sprintf "laplace eps_lb %.3f should be positive" v.Check.Distinguisher.eps_lb)
    (v.Check.Distinguisher.eps_lb > 0.2)

(* The acceptance probe for the harness itself: a deliberately mis-scaled
   Laplace — Lap(1/2ε), four times too little noise at sensitivity 1 —
   must be flagged as violating its claimed ε at the very significance
   level under which every shipped mechanism passes. *)
let test_misscaled_laplace_flagged r =
  let eps = 0.5 in
  let broken value rng = float_of_int value +. Prim.Rng.laplace rng ~scale:(1. /. (2. *. eps)) () in
  let v =
    Check.Distinguisher.run r ~claimed:(Prim.Dp.pure ~eps) ~trials
      ~events:(Check.Distinguisher.thresholds ~lo:48. ~hi:53. ~count:11)
      ~left:(broken 50) ~right:(broken 51) ()
  in
  assert_flagged "mis-scaled laplace must be caught" v;
  check_true
    (Printf.sprintf "certified loss %.3f should far exceed claimed %.3f"
       v.Check.Distinguisher.eps_lb eps)
    (v.Check.Distinguisher.eps_lb > eps)

let test_gaussian r =
  let eps = 0.5 and delta = 1e-5 in
  let sigma = Prim.Gaussian_mech.sigma ~eps ~delta ~l2_sensitivity:1.0 in
  assert_private "gaussian"
    (Check.Distinguisher.run r
       ~claimed:(Prim.Dp.v ~eps ~delta)
       ~trials
       ~events:(Check.Distinguisher.thresholds ~lo:42. ~hi:60. ~count:15)
       ~left:(fun r -> 50. +. Prim.Rng.gaussian r ~sigma ())
       ~right:(fun r -> 51. +. Prim.Rng.gaussian r ~sigma ())
       ())

(* Neighbouring sensitivity-1 score vectors for the selection mechanisms. *)
let scores_a = [| 3.; 5.; 4. |]

let scores_b = [| 4.; 4.; 3. |]

let test_exp_mech r =
  let eps = 0.5 in
  assert_private "exp-mech"
    (Check.Distinguisher.run r ~claimed:(Prim.Dp.pure ~eps) ~trials
       ~events:(Check.Distinguisher.categories ~k:3)
       ~left:(fun r -> Prim.Exp_mech.select r ~eps ~sensitivity:1.0 ~qualities:scores_a)
       ~right:(fun r -> Prim.Exp_mech.select r ~eps ~sensitivity:1.0 ~qualities:scores_b)
       ())

(* Report-noisy-max must match the exponential mechanism's ε claim on the
   same neighbouring score pair (its selection law differs; its privacy
   guarantee does not). *)
let test_noisy_max r =
  let eps = 0.5 in
  assert_private "noisy-max"
    (Check.Distinguisher.run r ~claimed:(Prim.Dp.pure ~eps) ~trials
       ~events:(Check.Distinguisher.categories ~k:3)
       ~left:(fun r -> Prim.Noisy_max.argmax r ~eps ~sensitivity:1.0 scores_a)
       ~right:(fun r -> Prim.Noisy_max.argmax r ~eps ~sensitivity:1.0 scores_b)
       ())

(* A cell present only in S' is released with probability ≤ δ/4 per draw
   (the Lap(2/ε) tail above the 1 + (2/ε)·ln(2/δ) threshold).  The CI-based
   verdict: fail only when the CP lower bound on the release rate clears
   that tail bound — i.e. we are confident of over-release, not unlucky. *)
let test_stability_hist_release_rate r =
  let eps = 1.0 and delta = 1e-4 in
  let runs = 20_000 in
  let released = ref 0 in
  for _ = 1 to runs do
    match Prim.Stability_hist.select r ~eps ~delta [ ("new-cell", 1) ] with
    | Some _ -> incr released
    | None -> ()
  done;
  let ci = Check.Stats.clopper_pearson ~alpha:0.01 ~k:!released ~n:runs in
  check_true
    (Printf.sprintf "singleton release rate %d/%d (CP lo %.2g) within delta/4 = %.2g"
       !released runs ci.Check.Stats.lo (delta /. 4.))
    (ci.Check.Stats.lo <= delta /. 4.)

(* Neighbouring singleton histograms through the distinguisher: adding one
   element to a fresh cell shifts the release law by at most (ε, δ). *)
let test_stability_hist_dp r =
  let eps = 1.0 and delta = 1e-4 in
  let obs cells rng =
    match Prim.Stability_hist.select rng ~eps ~delta cells with
    | None -> 0
    | Some cell -> if cell.Prim.Stability_hist.key = "x" then 1 else 2
  in
  assert_private "stability-hist"
    (Check.Distinguisher.run r
       ~claimed:(Prim.Dp.v ~eps ~delta)
       ~trials
       ~events:(Check.Distinguisher.categories ~k:3)
       ~left:(obs [ ("x", 30) ])
       ~right:(obs [ ("x", 30); ("y", 1) ])
       ())

(* The count lower bound m̂ must undershoot the true count (that is what
   makes σ safe); equality-direction errors would show as m̂ > m often. *)
let test_noisy_avg_count_offset r =
  let vs = Array.init 500 (fun _ -> [| 0.5 |]) in
  let overshoot = ref 0 in
  for _ = 1 to 2000 do
    match
      Prim.Noisy_avg.run r ~eps:1.0 ~delta:1e-6 ~diameter:1.0 ~pred:(fun _ -> true) ~dim:1 vs
    with
    | Prim.Noisy_avg.Average a -> if a.Prim.Noisy_avg.m_hat > 500. then incr overshoot
    | Prim.Noisy_avg.Bottom -> ()
  done;
  check_int "m_hat never exceeds the true count by design margin" 0 !overshoot

(* AboveThreshold calibration: the Above probability must be monotone in
   the query's distance to the threshold and near-saturated far from it,
   with Clopper–Pearson intervals doing the separating. *)
let test_sparse_vector_calibration r =
  let eps = 1.0 and threshold = 100. in
  let above_ci value =
    let runs = 10_000 in
    let above = ref 0 in
    for _ = 1 to runs do
      let sv = Prim.Sparse_vector.create r ~eps ~threshold in
      if Prim.Sparse_vector.query sv value = Prim.Sparse_vector.Above then incr above
    done;
    Check.Stats.clopper_pearson ~alpha:0.01 ~k:!above ~n:runs
  in
  let far_below = above_ci 60. in
  let below = above_ci 90. in
  let above = above_ci 110. in
  let far_above = above_ci 140. in
  check_true "far-below fires almost never" (far_below.Check.Stats.hi < 0.05);
  check_true "far-above fires almost always" (far_above.Check.Stats.lo > 0.95);
  check_true
    (Printf.sprintf "monotone: [%.3f, %.3f] below < above [%.3f, %.3f]"
       below.Check.Stats.lo below.Check.Stats.hi above.Check.Stats.lo above.Check.Stats.hi)
    (below.Check.Stats.hi < above.Check.Stats.lo)

(* Below-threshold answers are "free": a long stream of Belows must not
   change a later Above decision's distribution (one noisy threshold is
   kept).  CI-based: the two rates' intervals must overlap. *)
let test_sparse_vector_budget_independence r =
  let rate_ci prefix_len =
    let above = ref 0 in
    let runs = 20_000 in
    for _ = 1 to runs do
      let sv = Prim.Sparse_vector.create r ~eps:1.0 ~threshold:100. in
      for _ = 1 to prefix_len do
        if not (Prim.Sparse_vector.halted sv) then ignore (Prim.Sparse_vector.query sv 0.)
      done;
      if
        (not (Prim.Sparse_vector.halted sv))
        && Prim.Sparse_vector.query sv 100. = Prim.Sparse_vector.Above
      then incr above
    done;
    Check.Stats.clopper_pearson ~alpha:0.01 ~k:!above ~n:runs
  in
  let r1 = rate_ci 1 and r100 = rate_ci 100 in
  check_true
    (Printf.sprintf "rate CIs [%.3f, %.3f] and [%.3f, %.3f] overlap" r1.Check.Stats.lo
       r1.Check.Stats.hi r100.Check.Stats.lo r100.Check.Stats.hi)
    (r1.Check.Stats.lo <= r100.Check.Stats.hi && r100.Check.Stats.lo <= r1.Check.Stats.hi)

(* The full AboveThreshold interaction as a distinguisher target: feed a
   neighbouring query stream (every query shifted by the sensitivity) and
   compare the law of the firing index. *)
let test_sparse_vector_dp r =
  let eps = 1.0 in
  let queries_a = [| 9.; 11.; 9.; 12.; 8. |] in
  let queries_b = Array.map (fun q -> q +. 1.) queries_a in
  let fire queries rng =
    let sv = Prim.Sparse_vector.create rng ~eps ~threshold:10. in
    let n = Array.length queries in
    let rec go i =
      if i >= n then n
      else
        match Prim.Sparse_vector.query sv queries.(i) with
        | Prim.Sparse_vector.Above -> i
        | Prim.Sparse_vector.Below -> go (i + 1)
    in
    go 0
  in
  assert_private "sparse-vector firing index"
    (Check.Distinguisher.run r ~claimed:(Prim.Dp.pure ~eps) ~trials
       ~events:(Check.Distinguisher.categories ~k:(Array.length queries_a + 1))
       ~left:(fire queries_a) ~right:(fire queries_b) ())

(* The local randomizer is the whole privacy barrier of the LDP pipeline:
   neighbouring databases differ in one user, i.e. one true cell.  The
   report law is exactly known, so the distinguisher should certify most
   of the claimed loss — and a mis-calibrated variant (reports at 2ε
   while claiming ε) must be flagged, the LDP mirror of the mis-scaled
   Laplace canary above. *)
let test_local_randomizer_dp r =
  let eps = 1.2 and k = 6 in
  let v =
    Check.Distinguisher.run r ~claimed:(Prim.Dp.pure ~eps) ~trials
      ~events:(Check.Distinguisher.categories ~k)
      ~left:(fun r -> Privcluster.Local_cluster.randomize r ~eps ~k 0)
      ~right:(fun r -> Privcluster.Local_cluster.randomize r ~eps ~k 1)
      ()
  in
  assert_private "local randomizer" v;
  check_true
    (Printf.sprintf "local randomizer eps_lb %.3f should certify most of %.3f"
       v.Check.Distinguisher.eps_lb eps)
    (v.Check.Distinguisher.eps_lb > 0.7 *. eps)

let test_misscaled_local_randomizer_flagged r =
  let eps = 1.2 and k = 6 in
  let broken cell rng = Privcluster.Local_cluster.randomize rng ~eps:(2. *. eps) ~k cell in
  let v =
    Check.Distinguisher.run r ~claimed:(Prim.Dp.pure ~eps) ~trials
      ~events:(Check.Distinguisher.categories ~k)
      ~left:(broken 0) ~right:(broken 1) ()
  in
  assert_flagged "2-eps local randomizer claiming eps must be caught" v;
  check_true
    (Printf.sprintf "certified loss %.3f should exceed claimed %.3f"
       v.Check.Distinguisher.eps_lb eps)
    (v.Check.Distinguisher.eps_lb > eps)

let suite =
  [
    stat_slow_case "laplace neighbouring counts" test_laplace_count;
    stat_slow_case "mis-scaled laplace is flagged" test_misscaled_laplace_flagged;
    stat_slow_case "local randomizer neighbouring cells" test_local_randomizer_dp;
    stat_slow_case "mis-scaled local randomizer is flagged" test_misscaled_local_randomizer_flagged;
    stat_slow_case "gaussian neighbouring counts" test_gaussian;
    stat_slow_case "exp-mech neighbouring scores" test_exp_mech;
    stat_slow_case "noisy-max neighbouring scores" test_noisy_max;
    stat_slow_case "stability-hist singleton release rate" test_stability_hist_release_rate;
    stat_slow_case "stability-hist neighbouring histograms" test_stability_hist_dp;
    stat_slow_case "noisy-avg count offset direction" test_noisy_avg_count_offset;
    stat_slow_case "sparse-vector above/below calibration" test_sparse_vector_calibration;
    stat_slow_case "sparse-vector below-answers are free" test_sparse_vector_budget_independence;
    stat_slow_case "sparse-vector firing-index privacy" test_sparse_vector_dp;
  ]
