(** The experiment suite of EXPERIMENTS.md.

    The paper's evaluation content is Table 1 plus the quantitative claims
    of Theorems 3.2, 5.2/5.3 and 6.3; each experiment below regenerates one
    of them on synthetic workloads (DESIGN.md §3 is the index).  Every
    experiment prints its tables through {!Report} and is deterministic
    given [seed].

    [quick] shrinks trial counts and sweep grids so the full suite finishes
    in a couple of minutes; the default sizes are what EXPERIMENTS.md
    records. *)

type cfg = { quick : bool; seed : int }

val default_cfg : cfg

val e1_table1 : cfg -> unit
(** Table 1 — four-method head-to-head across dimensions and cluster
    fractions. *)

val e2_radius_vs_n : cfg -> unit
(** Theorem 3.2: radius-approximation factor vs [n], including the
    paper-constant JL path whose private radius tracks [√log n]. *)

val e3_delta_vs_eps : cfg -> unit
(** Theorem 3.2: cluster loss vs ε (certified and measured). *)

val e4_goodradius : cfg -> unit
(** Lemma 4.6: GoodRadius's ratio [r / r_opt] distribution, with the
    backend and radius-grid ablations. *)

val e5_min_t_vs_d : cfg -> unit
(** Theorem 3.2: minimum workable cluster size vs dimension. *)

val e6_domain_size : cfg -> unit
(** Remark 3.4: accuracy vs |X| — the log* / log / polylog comparison. *)

val e7_sample_aggregate : cfg -> unit
(** Theorem 6.3 vs 6.2: aggregator comparison as the good-run fraction α
    drops below 1/2, plus an end-to-end Algorithm 4 run. *)

val e8_outliers : cfg -> unit
(** §1.1: noise reduction from 1-cluster outlier screening. *)

val e9_k_clustering : cfg -> unit
(** Observation 3.5: k-ball coverage by iterated 1-cluster. *)

val e10_interior_point : cfg -> unit
(** Theorem 5.3: the IntPoint reduction solving interior point. *)

val e11_geometry_tails : cfg -> unit
(** Lemmas 4.9/4.10: measured JL distortion and rotated-projection bounds
    against their stated tails. *)

val e12_ablations : cfg -> unit
(** DESIGN.md's design choices measured: identity vs JL projection path,
    box-side-factor sweep. *)

val e13_quantiles : cfg -> unit
(** Private quantiles via RecConcave (the IntPoint step-4 machinery as a
    stand-alone tool): measured rank error vs the certified bound. *)

val e14_scalability : cfg -> unit
(** Dense O(n²) distance index vs the k-d tree backend: end-to-end time and
    answer quality as n grows past the dense backend's memory wall. *)

val all : (string * string * (cfg -> unit)) list
(** [(id, title, run)] for every experiment, in order. *)

val run_one : cfg -> string * string * (cfg -> unit) -> unit
(** One entry of {!all} with its standard header (id, title, mode, seed) —
    the unit the bench dispatches to engine-pool workers. *)

val run : ?only:string list -> cfg -> unit
(** Run all (or the selected) experiments with headers. *)
