(* C-stub externals.  All [@@noalloc]: the stubs allocate nothing on the
   OCaml heap and never call back, so flat float arrays are stable for
   the duration of a call.  Stubs with more than five arguments need the
   bytecode argv wrapper; stubs returning unboxed floats need separate
   byte/native entry points. *)

external c_count_within :
  float array -> int array -> int -> int -> float array -> int -> int ->
  float -> int
  = "pc_count_within_bc" "pc_count_within" [@@noalloc]

external c_dists_to_rows :
  float array -> int array -> int -> float array -> int -> int ->
  float array -> unit
  = "pc_dists_to_rows_bc" "pc_dists_to_rows" [@@noalloc]

external c_sort_floats : float array -> int -> unit
  = "pc_sort_floats" [@@noalloc]

external c_kth_smallest : float array -> int -> int -> (float [@unboxed])
  = "pc_kth_smallest_byte" "pc_kth_smallest_nat" [@@noalloc]

external c_counts_le_sorted :
  float array -> int -> float array -> int -> int array -> int -> int -> unit
  = "pc_counts_le_sorted_bc" "pc_counts_le_sorted" [@@noalloc]

external c_top_avg_capped :
  int array -> int -> int -> int -> int -> (float [@unboxed])
  = "pc_top_avg_capped_byte" "pc_top_avg_capped_nat" [@@noalloc]

external c_jl_project :
  float array -> float array -> int array -> int -> int -> int -> float ->
  float array -> unit
  = "pc_jl_project_bc" "pc_jl_project" [@@noalloc]

external c_sum_rows :
  float array -> int array -> int -> int -> float array -> unit
  = "pc_sum_rows" [@@noalloc]

external c_argmin_center :
  float array -> int -> float array -> int -> int -> int
  = "pc_argmin_center" [@@noalloc]

external c_argmax_dist :
  float array -> int array -> int -> float array -> int -> int -> int
  = "pc_argmax_dist_bc" "pc_argmax_dist" [@@noalloc]

external c_min_dist2_update :
  float array -> int -> int -> float array -> int -> float array -> unit
  = "pc_min_dist2_update_bc" "pc_min_dist2_update" [@@noalloc]

external c_leaf_multi_count :
  float array -> int array -> int -> int -> float array -> int -> int ->
  float array -> int -> int -> int array -> unit
  = "pc_leaf_multi_count_bc" "pc_leaf_multi_count" [@@noalloc]

let compiled = true

(* Runtime selection: one atomic read per kernel call.  The initial value
   honours PRIVCLUSTER_NO_NATIVE so the pure-OCaml tier (CI, debugging)
   needs no code change. *)
let env_disabled =
  match Sys.getenv_opt "PRIVCLUSTER_NO_NATIVE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let native = Atomic.make (compiled && not env_disabled)
let native_active () = Atomic.get native
let set_native b = Atomic.set native (b && compiled)

module Ref = struct
  let count_within ~st ~offs ~lo ~hi ~q ~qoff ~dim ~r2 =
    let c = ref 0 in
    for i = lo to hi do
      let off = Array.unsafe_get offs i in
      let acc = ref 0. in
      for j = 0 to dim - 1 do
        let d =
          Array.unsafe_get st (off + j) -. Array.unsafe_get q (qoff + j)
        in
        acc := !acc +. (d *. d)
      done;
      if !acc <= r2 then incr c
    done;
    !c

  let dists_to_rows ~st ~offs ~n ~q ~qoff ~dim ~out =
    for i = 0 to n - 1 do
      let off = Array.unsafe_get offs i in
      let acc = ref 0. in
      for j = 0 to dim - 1 do
        let d =
          Array.unsafe_get q (qoff + j) -. Array.unsafe_get st (off + j)
        in
        acc := !acc +. (d *. d)
      done;
      Array.unsafe_set out i (Float.sqrt !acc)
    done

  let sort_floats a = Array.sort Float.compare a

  let kth_smallest a ~len ~k =
    let sub = Array.sub a 0 len in
    Array.sort Float.compare sub;
    sub.(k - 1)

  let counts_le_sorted ~row ~len ~radii ~nr ~out ~stride ~col =
    for j = 0 to nr - 1 do
      let r = radii.(j) in
      (* upper_bound: count of entries <= r *)
      let lo = ref 0 and hi = ref len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Array.unsafe_get row mid <= r then lo := mid + 1 else hi := mid
      done;
      out.((j * stride) + col) <- !lo
    done

  let top_avg_capped ~counts ~off ~len ~cap ~k =
    let hist = Array.make (cap + 1) 0 in
    for i = 0 to len - 1 do
      let c = min cap counts.(off + i) in
      hist.(c) <- hist.(c) + 1
    done;
    let sum = ref 0 and remaining = ref k in
    let v = ref cap in
    while !v >= 0 && !remaining > 0 do
      let take = min hist.(!v) !remaining in
      sum := !sum + (take * !v);
      remaining := !remaining - take;
      decr v
    done;
    float_of_int !sum /. float_of_int k

  let jl_project ~mat ~st ~offs ~n ~in_dim ~out_dim ~scale ~out =
    for i = 0 to n - 1 do
      let xoff = Array.unsafe_get offs i in
      let obase = i * out_dim in
      for r = 0 to out_dim - 1 do
        let mbase = r * in_dim in
        let acc = ref 0. in
        for j = 0 to in_dim - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get mat (mbase + j)
                *. Array.unsafe_get st (xoff + j))
        done;
        Array.unsafe_set out (obase + r) (scale *. !acc)
      done
    done

  let sum_rows ~st ~sel ~m ~dim ~acc =
    for s = 0 to m - 1 do
      let off = Array.unsafe_get sel s in
      for j = 0 to dim - 1 do
        Array.unsafe_set acc j
          (Array.unsafe_get acc j +. Array.unsafe_get st (off + j))
      done
    done

  let argmin_center ~st ~off ~centers ~k ~dim =
    let best = ref 0 and best_d = ref infinity in
    for j = 0 to k - 1 do
      let cbase = j * dim in
      let acc = ref 0. in
      for l = 0 to dim - 1 do
        let d =
          Array.unsafe_get st (off + l) -. Array.unsafe_get centers (cbase + l)
        in
        acc := !acc +. (d *. d)
      done;
      if !acc < !best_d then begin
        best_d := !acc;
        best := j
      end
    done;
    !best

  let argmax_dist ~st ~offs ~n ~q ~qoff ~dim =
    let best = ref 0 and best_d = ref neg_infinity in
    for i = 0 to n - 1 do
      let off = Array.unsafe_get offs i in
      let acc = ref 0. in
      for j = 0 to dim - 1 do
        let d =
          Array.unsafe_get st (off + j) -. Array.unsafe_get q (qoff + j)
        in
        acc := !acc +. (d *. d)
      done;
      if !acc > !best_d then begin
        best_d := !acc;
        best := i
      end
    done;
    !best

  let min_dist2_update ~st ~n ~dim ~centers ~coff ~dist2 =
    for i = 0 to n - 1 do
      let base = i * dim in
      let acc = ref 0. in
      for j = 0 to dim - 1 do
        let d =
          Array.unsafe_get st (base + j) -. Array.unsafe_get centers (coff + j)
        in
        acc := !acc +. (d *. d)
      done;
      if !acc < Array.unsafe_get dist2 i then Array.unsafe_set dist2 i !acc
    done

  let leaf_multi_count ~st ~idx ~lo ~hi ~q ~qoff ~dim ~r2s ~jlo ~jhi ~acc =
    if jlo < jhi then
      for i = lo to hi do
        let off = Array.unsafe_get idx i in
        let d2 = ref 0. in
        for j = 0 to dim - 1 do
          let d =
            Array.unsafe_get st (off + j) -. Array.unsafe_get q (qoff + j)
          in
          d2 := !d2 +. (d *. d)
        done;
        if !d2 <= r2s.(jhi - 1) then begin
          let a = ref jlo and b = ref (jhi - 1) in
          while !a < !b do
            let mid = (!a + !b) / 2 in
            if !d2 <= Array.unsafe_get r2s mid then b := mid else a := mid + 1
          done;
          acc.(!a) <- acc.(!a) + 1;
          acc.(jhi) <- acc.(jhi) - 1
        end
      done
end

let count_within ~st ~offs ~lo ~hi ~q ~qoff ~dim ~r2 =
  if Atomic.get native then c_count_within st offs lo hi q qoff dim r2
  else Ref.count_within ~st ~offs ~lo ~hi ~q ~qoff ~dim ~r2

let dists_to_rows ~st ~offs ~n ~q ~qoff ~dim ~out =
  if Atomic.get native then c_dists_to_rows st offs n q qoff dim out
  else Ref.dists_to_rows ~st ~offs ~n ~q ~qoff ~dim ~out

let sort_floats a =
  if Atomic.get native then c_sort_floats a (Array.length a)
  else Ref.sort_floats a

let kth_smallest a ~len ~k =
  if Atomic.get native then c_kth_smallest a len k
  else Ref.kth_smallest a ~len ~k

let counts_le_sorted ~row ~len ~radii ~nr ~out ~stride ~col =
  if Atomic.get native then c_counts_le_sorted row len radii nr out stride col
  else Ref.counts_le_sorted ~row ~len ~radii ~nr ~out ~stride ~col

let top_avg_capped ~counts ~off ~len ~cap ~k =
  if Atomic.get native then begin
    let r = c_top_avg_capped counts off len cap k in
    (* Negative only on allocation failure inside the stub; counts are
       non-negative so a real result is always >= 0. *)
    if r >= 0. then r else Ref.top_avg_capped ~counts ~off ~len ~cap ~k
  end
  else Ref.top_avg_capped ~counts ~off ~len ~cap ~k

let jl_project ~mat ~st ~offs ~n ~in_dim ~out_dim ~scale ~out =
  if Atomic.get native then
    c_jl_project mat st offs n in_dim out_dim scale out
  else Ref.jl_project ~mat ~st ~offs ~n ~in_dim ~out_dim ~scale ~out

let sum_rows ~st ~sel ~m ~dim ~acc =
  if Atomic.get native then c_sum_rows st sel m dim acc
  else Ref.sum_rows ~st ~sel ~m ~dim ~acc

let argmin_center ~st ~off ~centers ~k ~dim =
  if Atomic.get native then c_argmin_center st off centers k dim
  else Ref.argmin_center ~st ~off ~centers ~k ~dim

let argmax_dist ~st ~offs ~n ~q ~qoff ~dim =
  if Atomic.get native then c_argmax_dist st offs n q qoff dim
  else Ref.argmax_dist ~st ~offs ~n ~q ~qoff ~dim

let min_dist2_update ~st ~n ~dim ~centers ~coff ~dist2 =
  if Atomic.get native then c_min_dist2_update st n dim centers coff dist2
  else Ref.min_dist2_update ~st ~n ~dim ~centers ~coff ~dist2

let leaf_multi_count ~st ~idx ~lo ~hi ~q ~qoff ~dim ~r2s ~jlo ~jhi ~acc =
  if Atomic.get native then
    c_leaf_multi_count st idx lo hi q qoff dim r2s jlo jhi acc
  else Ref.leaf_multi_count ~st ~idx ~lo ~hi ~q ~qoff ~dim ~r2s ~jlo ~jhi ~acc
