lib/core/profile.ml: Float Format
