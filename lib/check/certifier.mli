(** Utility certification for Theorem 3.2's contract.

    The theorem promises that with probability ≥ 1 − β the released ball
    [B(c, r)] covers at least [t − Δ] input points (Δ the run's certified
    [delta_bound]) and [r] stays within a bounded factor [w] of [r_opt].
    This module replays many independently seeded planted workloads through
    {!Privcluster.One_cluster} and reports the observed failure rate of
    each clause with an exact Clopper–Pearson interval.

    Since β upper-bounds the {e union} of both failure modes, the verdict
    is one-sided and conservative in the same spirit as the DP
    distinguisher: a violation is declared only when the CP lower bound on
    the total failure rate exceeds β — i.e. we are confident the contract
    is broken, not merely unlucky. *)

type spec = {
  runs : int;
  n : int;
  dim : int;
  axis : int;
  fraction : float;  (** Planted cluster fraction of [n]. *)
  radius : float;  (** Planted cluster radius. *)
  t_fraction : float;  (** Target [t] as a share of the planted size. *)
  eps : float;
  delta : float;
  beta : float;
  w_max : float;
      (** The radius-ratio factor to certify: [r ≤ w_max · r_hi] with
          [r_hi] the planted-radius-tightened upper bound on [r_opt]. *)
}

val default_spec : spec
(** 200 runs of the experiment suite's midsize planted workload
    ([n = 1500], [d = 2], [|X| = 256]) at [(ε, δ) = (2, 1e-6)],
    [β = 0.1], [w_max = 40] — the conservative envelope over the
    [wPriv ≈ 18–22] capture constant EXPERIMENTS.md (E2) measures for
    the practical profile's identity path at [d = 2]. *)

type outcome = {
  spec : spec;
  solver_failures : int;  (** Runs where the solver returned [Error]. *)
  coverage_failures : int;  (** Covered fewer than [t − Δ] points. *)
  radius_failures : int;  (** Returned radius above [w_max · r_hi]. *)
  failures : int;  (** Runs failing any clause (not the sum: one run can fail several). *)
  failure_rate : float;
  failure_ci : Stats.interval;
  median_w : float;  (** Median of radius / r_hi over successful runs. *)
  median_coverage_margin : float;
      (** Median of [covered − (t − Δ)] over non-solver-failure runs. *)
  violation : bool;  (** [failure_ci.lo > beta]. *)
}

val one_cluster :
  Prim.Rng.t -> ?alpha:float -> ?domains:int -> Privcluster.Profile.t -> spec -> outcome
(** Replay [spec.runs] independently seeded workloads (streams derived
    from the given generator, fanned out over an {!Engine.Pool} of
    [domains] worker domains — results independent of [domains]) and
    certify the contract at confidence [1 − alpha] (default 0.05). *)

val local_default_spec : spec
(** The local-model contract workload: [n = 20 000] (the LDP √n/ε count
    noise needs that much data before a 60% cluster at [t_fraction = 0.8]
    is in-regime — see the E1 crossover experiment), other fields as
    {!default_spec}.  [w_max] stays 40: the released block radius at the
    planted-radius scale is [≤ 4·√d·radius]. *)

val local_cluster : Prim.Rng.t -> ?alpha:float -> ?domains:int -> spec -> outcome
(** {!Privcluster.Local_cluster}'s contract over planted workloads: ball
    covers at least [t − delta_bound] points and radius stays within
    [w_max] of the planted radius (itself a valid [r_opt] upper bound, so
    the check is conservative).  Same verdict semantics as
    {!one_cluster}. *)

val meb_default_spec : spec
(** The MEB contract workload: {!default_spec} with a 90% majority
    cluster, [t_fraction = 0.85] and [w_max = 20] (the noisy coreset
    average plus six refinement rounds land the center within a few
    planted radii; the radius search then pays one grid-granularity
    step). *)

val meb_fptas : Prim.Rng.t -> ?alpha:float -> ?domains:int -> spec -> outcome
(** {!Baselines.Meb_fptas}'s contract: ball covers at least [t] minus
    twice the radius stage's certified monotone-search slack, and radius
    stays within [w_max] of the planted radius. *)
