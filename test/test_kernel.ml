(* Differential suite for lib/kernel: every C stub must agree bit-for-bit
   with its pure-OCaml reference (Kernel.Ref) — the ULP bound is zero by
   contract (DESIGN.md §11), which is what lets the runtime switch backends
   without breaking Result_cache exact replay.  Also pins the parallel
   kd-tree build against the serial one and the batched GoodRadius sweep
   against per-radius scoring. *)

open Testutil

let check_bits msg expected actual =
  if Int64.bits_of_float expected <> Int64.bits_of_float actual then
    Alcotest.failf "%s: expected %h, got %h (not bit-identical)" msg expected actual

let check_float_array msg expected actual =
  if Array.length expected <> Array.length actual then
    Alcotest.failf "%s: length %d vs %d" msg (Array.length expected) (Array.length actual);
  Array.iteri (fun i e -> check_bits (Printf.sprintf "%s[%d]" msg i) e actual.(i)) expected

let check_int_array msg expected actual =
  Alcotest.(check (array int)) msg expected actual

(* Run [f] with the C kernels forced on; restore the ambient selection
   after.  Under PRIVCLUSTER_NO_NATIVE the dispatch table already points at
   Ref, so forcing native on exercises the C side regardless of tier. *)
let with_native f =
  let before = Kernel.native_active () in
  Kernel.set_native true;
  Fun.protect ~finally:(fun () -> Kernel.set_native before) f

(* Clouds with deliberate duplicates: coordinates drawn from a small
   discrete set collide often, exercising tie-breaking (argmin/argmax keep
   the first) and duplicate-distance sorting. *)
let cloud_gen =
  QCheck2.Gen.(
    int_range 1 5 >>= fun d ->
    int_range 1 48 >>= fun n ->
    let coord =
      oneof [ float_range (-8.) 8.; (int_range 0 3 >|= fun i -> float_of_int i) ]
    in
    array_size (return n) (array_size (return d) coord) >|= fun pts -> (d, pts))

let flat_of pts d =
  let n = Array.length pts in
  let st = Array.make (n * d) 0. in
  Array.iteri (fun i p -> Array.blit p 0 st (i * d) d) pts;
  (st, Array.init n (fun i -> i * d))

let test_count_within_diff =
  qcheck "count_within: C = Ref (incl. duplicates)"
    QCheck2.Gen.(pair cloud_gen (float_range 0. 10.))
    (fun ((d, pts), radius) ->
      with_native @@ fun () ->
      let st, offs = flat_of pts d in
      let n = Array.length pts in
      let q = pts.(0) in
      let r2 = radius *. radius in
      Kernel.count_within ~st ~offs ~lo:0 ~hi:(n - 1) ~q ~qoff:0 ~dim:d ~r2
      = Kernel.Ref.count_within ~st ~offs ~lo:0 ~hi:(n - 1) ~q ~qoff:0 ~dim:d ~r2)

let test_dists_sort_kth_diff =
  qcheck "dists/sort/kth: C = Ref bitwise" cloud_gen (fun (d, pts) ->
      with_native @@ fun () ->
      let st, offs = flat_of pts d in
      let n = Array.length pts in
      let out_c = Array.make n 0. and out_r = Array.make n 0. in
      Kernel.dists_to_rows ~st ~offs ~n ~q:pts.(n - 1) ~qoff:0 ~dim:d ~out:out_c;
      Kernel.Ref.dists_to_rows ~st ~offs ~n ~q:pts.(n - 1) ~qoff:0 ~dim:d ~out:out_r;
      check_float_array "dists" out_r out_c;
      let k = 1 + (Array.length pts / 2) in
      let kth_c = Kernel.kth_smallest (Array.copy out_c) ~len:n ~k in
      let kth_r = Kernel.Ref.kth_smallest (Array.copy out_r) ~len:n ~k in
      check_bits "kth_smallest" kth_r kth_c;
      Kernel.sort_floats out_c;
      Kernel.Ref.sort_floats out_r;
      check_float_array "sorted" out_r out_c;
      true)

let test_counts_le_sorted_diff =
  qcheck "counts_le_sorted: C = Ref"
    QCheck2.Gen.(
      pair
        (array_size (int_range 0 60) (float_range 0. 20.))
        (array_size (int_range 1 40) (float_range (-1.) 21.)))
    (fun (row, radii) ->
      with_native @@ fun () ->
      Array.sort Float.compare row;
      Array.sort Float.compare radii;
      let nr = Array.length radii in
      let out_c = Array.make nr 0 and out_r = Array.make nr 0 in
      Kernel.counts_le_sorted ~row ~len:(Array.length row) ~radii ~nr ~out:out_c
        ~stride:1 ~col:0;
      Kernel.Ref.counts_le_sorted ~row ~len:(Array.length row) ~radii ~nr ~out:out_r
        ~stride:1 ~col:0;
      check_int_array "counts" out_r out_c;
      true)

let test_top_avg_capped_diff =
  qcheck "top_avg_capped: C = Ref = sort-based top_average"
    QCheck2.Gen.(
      array_size (int_range 1 80) (int_range 0 50) >>= fun counts ->
      int_range 0 60 >>= fun cap ->
      int_range 1 (Array.length counts) >|= fun k -> (counts, cap, k))
    (fun (counts, cap, k) ->
      with_native @@ fun () ->
      let len = Array.length counts in
      let c = Kernel.top_avg_capped ~counts ~off:0 ~len ~cap ~k in
      let r = Kernel.Ref.top_avg_capped ~counts ~off:0 ~len ~cap ~k in
      check_bits "top_avg C vs Ref" r c;
      (* The histogram result must also equal the historical sort-based
         average of the k largest capped counts. *)
      let capped = Array.map (fun x -> float_of_int (min cap x)) counts in
      check_bits "top_avg vs top_average" (Geometry.Pointset.top_average capped ~k) c;
      true)

let test_jl_sum_rows_diff =
  qcheck "jl_project/sum_rows: C = Ref bitwise" cloud_gen (fun (d, pts) ->
      with_native @@ fun () ->
      let st, offs = flat_of pts d in
      let n = Array.length pts in
      let out_dim = 3 in
      let mat = Array.init (out_dim * d) (fun i -> sin (float_of_int (i + 1))) in
      let p_c = Array.make (n * out_dim) 0. and p_r = Array.make (n * out_dim) 0. in
      Kernel.jl_project ~mat ~st ~offs ~n ~in_dim:d ~out_dim ~scale:0.577 ~out:p_c;
      Kernel.Ref.jl_project ~mat ~st ~offs ~n ~in_dim:d ~out_dim ~scale:0.577 ~out:p_r;
      check_float_array "jl_project" p_r p_c;
      let acc_c = Array.make d 0. and acc_r = Array.make d 0. in
      Kernel.sum_rows ~st ~sel:offs ~m:n ~dim:d ~acc:acc_c;
      Kernel.Ref.sum_rows ~st ~sel:offs ~m:n ~dim:d ~acc:acc_r;
      check_float_array "sum_rows" acc_r acc_c;
      true)

let test_argmin_argmax_mindist_diff =
  qcheck "argmin/argmax/min_dist2: C = Ref (first-of-equals)" cloud_gen
    (fun (d, pts) ->
      with_native @@ fun () ->
      let st, offs = flat_of pts d in
      let n = Array.length pts in
      let k = min 4 n in
      let centers = Array.sub st 0 (k * d) in
      for i = 0 to n - 1 do
        let c = Kernel.argmin_center ~st ~off:(i * d) ~centers ~k ~dim:d in
        let r = Kernel.Ref.argmin_center ~st ~off:(i * d) ~centers ~k ~dim:d in
        check_int (Printf.sprintf "argmin_center[%d]" i) r c
      done;
      let c = Kernel.argmax_dist ~st ~offs ~n ~q:pts.(0) ~qoff:0 ~dim:d in
      let r = Kernel.Ref.argmax_dist ~st ~offs ~n ~q:pts.(0) ~qoff:0 ~dim:d in
      check_int "argmax_dist" r c;
      let d2_c = Array.make n infinity and d2_r = Array.make n infinity in
      Kernel.min_dist2_update ~st ~n ~dim:d ~centers ~coff:0 ~dist2:d2_c;
      Kernel.Ref.min_dist2_update ~st ~n ~dim:d ~centers ~coff:0 ~dist2:d2_r;
      check_float_array "min_dist2_update" d2_r d2_c;
      true)

let test_edge_cases () =
  with_native @@ fun () ->
  let st = [| 0.25; 0.75 |] and offs = [| 0 |] in
  (* Empty range: lo > hi counts nothing. *)
  check_int "empty count"
    0
    (Kernel.count_within ~st ~offs ~lo:0 ~hi:(-1) ~q:st ~qoff:0 ~dim:2 ~r2:10.);
  (* Singleton: the point is inside its own radius-0 ball. *)
  check_int "singleton count"
    1
    (Kernel.count_within ~st ~offs ~lo:0 ~hi:0 ~q:st ~qoff:0 ~dim:2 ~r2:0.);
  Kernel.sort_floats [||];
  check_bits "kth of singleton" 0.5 (Kernel.kth_smallest [| 0.5 |] ~len:1 ~k:1);
  (* All-duplicate cloud: every pair at distance 0. *)
  let dup = Array.make 8 [| 1.5; -2.5 |] in
  let dst, doffs = flat_of dup 2 in
  check_int "duplicates all inside"
    8
    (Kernel.count_within ~st:dst ~offs:doffs ~lo:0 ~hi:7 ~q:dst ~qoff:0 ~dim:2 ~r2:0.);
  let row = Array.make 8 0. in
  Kernel.dists_to_rows ~st:dst ~offs:doffs ~n:8 ~q:dst ~qoff:0 ~dim:2 ~out:row;
  Kernel.sort_floats row;
  check_float_array "duplicate distances" (Array.make 8 0.) row;
  check_bits "top_avg of empty-cap" 0.
    (Kernel.top_avg_capped ~counts:[| 5; 5 |] ~off:0 ~len:2 ~cap:0 ~k:2);
  (* counts_le_sorted over an empty row. *)
  let out = [| 99 |] in
  Kernel.counts_le_sorted ~row:[||] ~len:0 ~radii:[| 1. |] ~nr:1 ~out ~stride:1 ~col:0;
  check_int "empty row count" 0 out.(0)

let test_count_within_row_many_matches_per_radius =
  qcheck ~count:100 "kdtree multi-radius = per-radius counts"
    QCheck2.Gen.(pair cloud_gen (array_size (int_range 1 24) (float_range 0. 6.)))
    (fun ((d, pts), radii) ->
      with_native @@ fun () ->
      Array.sort Float.compare radii;
      let st, offs = flat_of pts d in
      let tree = Geometry.Kdtree.build_flat ~storage:st ~offs ~dim:d () in
      let nr = Array.length radii in
      let out = Array.make nr (-1) in
      Geometry.Kdtree.count_within_row_many tree st ~off:0 ~radii ~out ~stride:1 ~col:0;
      let expected =
        Array.map (fun r -> Geometry.Kdtree.count_within_row tree st ~off:0 ~radius:r) radii
      in
      check_int_array "multi-radius counts" expected out;
      true)

let test_score_l_many_matches_score_l =
  qcheck ~count:60 "score_l_many = per-radius score_l (both backends)"
    QCheck2.Gen.(
      pair cloud_gen (pair (int_range 1 10) (array_size (int_range 1 16) (float_range 0. 5.))))
    (fun ((_d, pts), (cap, radii)) ->
      with_native @@ fun () ->
      Array.sort Float.compare radii;
      let ps = Geometry.Pointset.create pts in
      List.iter
        (fun idx ->
          let batched = Geometry.Pointset.score_l_many idx ~cap ~radii in
          Array.iteri
            (fun j r ->
              check_bits
                (Printf.sprintf "L(%g) cap=%d" r cap)
                (Geometry.Pointset.score_l idx ~cap ~radius:r)
                batched.(j))
            radii)
        [ Geometry.Pointset.build_index ps; Geometry.Pointset.build_tree_index ps ];
      true)

let test_parallel_build_equals_serial =
  qcheck ~count:40 "parallel kd build = serial (row_order + structure)"
    QCheck2.Gen.(pair cloud_gen (int_range 2 4))
    (fun ((d, pts), domains) ->
      let st, offs = flat_of pts d in
      let serial = Geometry.Kdtree.build_flat ~domains:1 ~storage:st ~offs ~dim:d () in
      let par = Geometry.Kdtree.build_flat ~domains ~storage:st ~offs ~dim:d () in
      check_int_array "row_order" (Geometry.Kdtree.row_order serial)
        (Geometry.Kdtree.row_order par);
      List.iter
        (fun radius ->
          check_int
            (Printf.sprintf "count at r=%g" radius)
            (Geometry.Kdtree.count_within serial ~center:pts.(0) ~radius)
            (Geometry.Kdtree.count_within par ~center:pts.(0) ~radius))
        [ 0.; 0.5; 2.; 10. ];
      true)

let test_parallel_build_large_cloud () =
  (* Big enough to cross several skeleton levels and exercise real worker
     domains, with a duplicated block to hit the degenerate-bbox leaf. *)
  let r = rng ~seed:91 () in
  let n = 4000 and d = 3 in
  let st =
    Array.init (n * d) (fun i -> if i < 300 then 0.25 else Prim.Rng.float r 1.0)
  in
  let offs = Array.init n (fun i -> i * d) in
  let serial = Geometry.Kdtree.build_flat ~domains:1 ~storage:st ~offs ~dim:d () in
  List.iter
    (fun domains ->
      let par = Geometry.Kdtree.build_flat ~domains ~storage:st ~offs ~dim:d () in
      check_int_array
        (Printf.sprintf "row_order at %d domains" domains)
        (Geometry.Kdtree.row_order serial)
        (Geometry.Kdtree.row_order par))
    [ 2; 4; 8 ]

let test_native_off_matches_native_on () =
  (* End-to-end: the full pipeline must be bit-identical with the C kernels
     on and off — same centers, radii, and stage diagnostics. *)
  let _, grid, w = small_workload ~n:300 ~fraction:0.6 ~radius:0.05 () in
  let run () =
    let r = rng ~seed:23 () in
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:4.0
      ~delta:1e-6 ~beta:0.1 ~t:150 w.Workload.Synth.points
  in
  let before = Kernel.native_active () in
  Fun.protect ~finally:(fun () -> Kernel.set_native before) @@ fun () ->
  Kernel.set_native true;
  let on = run () in
  Kernel.set_native false;
  let off = run () in
  match (on, off) with
  | Ok a, Ok b ->
      check_float_array "center" a.Privcluster.One_cluster.center
        b.Privcluster.One_cluster.center;
      check_bits "radius" a.Privcluster.One_cluster.radius
        b.Privcluster.One_cluster.radius;
      check_int "score evals"
        a.Privcluster.One_cluster.radius_stage.Privcluster.Good_radius.score_evals
        b.Privcluster.One_cluster.radius_stage.Privcluster.Good_radius.score_evals
  | Error _, Error _ -> ()
  | _ -> Alcotest.fail "native on/off disagree on success"

let test_selection_reporting () =
  check_true "stubs compiled in" Kernel.compiled;
  let before = Kernel.native_active () in
  Fun.protect ~finally:(fun () -> Kernel.set_native before) @@ fun () ->
  Kernel.set_native false;
  check_true "disable wins" (not (Kernel.native_active ()));
  Kernel.set_native true;
  check_true "re-enable wins" (Kernel.native_active ())

let suite =
  [
    test_count_within_diff;
    test_dists_sort_kth_diff;
    test_counts_le_sorted_diff;
    test_top_avg_capped_diff;
    test_jl_sum_rows_diff;
    test_argmin_argmax_mindist_diff;
    case "kernel edge cases (empty/singleton/duplicates)" test_edge_cases;
    test_count_within_row_many_matches_per_radius;
    test_score_l_many_matches_score_l;
    test_parallel_build_equals_serial;
    case "parallel kd build, large cloud, 2/4/8 domains" test_parallel_build_large_cloud;
    case "pipeline bit-identical with kernels on/off" test_native_off_matches_native_on;
    case "runtime selection switches" test_selection_reporting;
  ]
