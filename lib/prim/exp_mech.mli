(** The exponential mechanism (McSherry–Talwar).

    Given a finite candidate set and a sensitivity-[s] quality score, select
    candidate [f] with probability proportional to [exp(ε·q(f)/(2s))].  This
    is [(ε, 0)]-DP.  It is the base case of RecConcave (Theorem 4.3) and the
    engine of the Table-1 "exponential mechanism" baseline. *)

val select : Rng.t -> eps:float -> sensitivity:float -> qualities:float array -> int
(** Index of the selected candidate.  Implemented with the Gumbel-max trick
    so arbitrarily large score ranges cannot overflow. *)

val probabilities : eps:float -> sensitivity:float -> qualities:float array -> float array
(** The exact output law of {!select}: candidate [i] is chosen with
    probability [exp(ε·q_i/(2s)) / Σ_j exp(ε·q_j/(2s))] (computed in a
    max-shifted, overflow-free form).  The verification harness's chi-square
    tester compares empirical selection counts against this. *)

val select_elt :
  Rng.t -> eps:float -> sensitivity:float -> quality:('a -> float) -> 'a array -> 'a
(** Convenience wrapper evaluating [quality] on each element. *)

val error_bound : eps:float -> sensitivity:float -> n_candidates:int -> beta:float -> float
(** With probability ≥ 1 − beta the selected candidate's quality is within
    this additive amount of the maximum:
    [(2s/ε)·ln(n_candidates/β)] (standard utility theorem). *)
