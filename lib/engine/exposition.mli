(** Prometheus text exposition of engine state.

    Turns the engine's observable state — {!Telemetry} job stats, the
    {!Accountant} privacy ledger, and (when tracing ran) collected
    {!Obs.Span} aggregates — into {!Obs.Prom} families:

    - [privcluster_jobs_total{kind,status}] — finished jobs;
    - [privcluster_job_latency_ms{kind}] — latency histogram on the
      telemetry buckets;
    - [privcluster_engine_events_total{event}] — named counters
      (retries, worker restarts, degradations);
    - [privcluster_budget_epsilon] / [..._delta]
      [{dataset,quantity="budget"|"spent"}] and
      [privcluster_budget_refusals_total{dataset}] — the ledger;
    - [privcluster_epoch{dataset}] — the dataset's current epoch;
    - [privcluster_bounds_cache_total{dataset,event="lookup"|"hit"}] —
      the registry's r_opt-bounds cache;
    - [privcluster_result_cache_total{dataset,event="hit"|"miss"}] —
      the service's result cache (when a cache is passed);
    - the [privcluster_spans_*] families of {!Obs.Prom.of_spans}.

    {!of_report_json} rebuilds the same families from a batch report
    written earlier ({!Service.report_json}), so [privcluster-cli
    metrics] can expose a run after the fact without re-running it. *)

val families :
  ?spans:Obs.Span.span list ->
  ?dataset:Registry.dataset ->
  ?datasets:Registry.dataset list ->
  ?result_cache:Result_cache.t ->
  telemetry:Telemetry.t ->
  unit ->
  Obs.Prom.family list
(** [dataset] and [datasets] both contribute ledger rows — the budget
    families carry one sample set per dataset, keyed by the [dataset]
    label, so a multi-dataset tenant (the daemon's metrics endpoint)
    renders in single Prometheus families.  [result_cache] (the
    service's, {!Service.result_cache}) adds the per-dataset hit/miss
    family. *)

val render :
  ?spans:Obs.Span.span list ->
  ?dataset:Registry.dataset ->
  ?datasets:Registry.dataset list ->
  ?result_cache:Result_cache.t ->
  telemetry:Telemetry.t ->
  unit ->
  string
(** [Obs.Prom.render (families ...)]. *)

val of_report_json : Obs.Json.t -> (Obs.Prom.family list, string) result
(** Rebuild families from a {!Service.report_json} document (its
    [telemetry] and [dataset.accountant] sections).  Errors name the
    missing or malformed field. *)

(** {2 Serving telemetry}

    Request-level families for the daemon's [metrics] endpoint, fed by
    [Server.Serving] (the dependency points server → engine, so the
    rows arrive as plain data). *)

type serving_rows = {
  requests : (string * string * Obs.Hist.snapshot) list;
      (** [(verb, tenant, hist)], one summary sample each. *)
  queue_wait : (string * Obs.Hist.snapshot) list;  (** [(verb, hist)]. *)
  burn : (string * string * float) list;
      (** [(tenant, dataset, eps-budget fraction per hour)]. *)
  sheds : (string * int) list;  (** [(reason, count)]. *)
}

val serving_families : serving_rows -> Obs.Prom.family list
(** [privcluster_request_seconds{verb,tenant,quantile}] (summary),
    [privcluster_queue_wait_seconds{verb}] (histogram),
    [privcluster_budget_burn_rate{tenant,dataset}] (gauge) and
    [privcluster_request_sheds_total{reason}] (counter). *)
