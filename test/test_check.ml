(* Unit and integration tests for the lib/check verification harness:
   the special functions and estimators against closed forms, the exact
   reference laws, the distinguisher's verdict logic on synthetic counts,
   and (deep tier) the composite checks of the Suite registry. *)

open Testutil

(* ---- special functions against closed forms ----------------------- *)

let test_special_functions () =
  (* Γ(5) = 24. *)
  check_float ~tol:1e-9 "log_gamma 5" (log 24.) (Check.Stats.log_gamma 5.);
  (* Regularized incomplete beta at a = b = 1 is the identity. *)
  check_float ~tol:1e-9 "I_1,1(0.3)" 0.3 (Check.Stats.reg_inc_beta ~a:1. ~b:1. 0.3);
  (* chi2 survival at df = 2 is exp(-x/2). *)
  check_float ~tol:1e-9 "chi2_sf df=2" (exp (-1.)) (Check.Stats.chi2_sf ~df:2 2.);
  (* Standard normal quantiles. *)
  check_float ~tol:1e-9 "Phi(0)" 0.5 (Check.Stats.normal_cdf ~sigma:1. 0.);
  check_float ~tol:1e-4 "Phi(1.96)" 0.975 (Check.Stats.normal_cdf ~sigma:1. 1.959964);
  check_float ~tol:1e-12 "erfc(0)" 1. (Check.Stats.erfc 0.)

let test_clopper_pearson () =
  let n = 50 and alpha = 0.05 in
  (* k = 0: lo = 0, hi = 1 - (alpha/2)^(1/n) (exact closed form). *)
  let ci = Check.Stats.clopper_pearson ~alpha ~k:0 ~n in
  check_float ~tol:1e-9 "k=0 lo" 0. ci.Check.Stats.lo;
  check_float ~tol:1e-6 "k=0 hi" (1. -. ((alpha /. 2.) ** (1. /. float_of_int n))) ci.Check.Stats.hi;
  (* k = n mirrors it. *)
  let ci = Check.Stats.clopper_pearson ~alpha ~k:n ~n in
  check_float ~tol:1e-6 "k=n lo" ((alpha /. 2.) ** (1. /. float_of_int n)) ci.Check.Stats.lo;
  check_float ~tol:1e-9 "k=n hi" 1. ci.Check.Stats.hi;
  (* The interval contains the point estimate and is monotone in k. *)
  let ci = Check.Stats.clopper_pearson ~alpha ~k:25 ~n in
  check_in_range "k=n/2 straddles 0.5" ~lo:ci.Check.Stats.lo ~hi:ci.Check.Stats.hi 0.5;
  check_true "interval proper" (ci.Check.Stats.lo < ci.Check.Stats.hi)

(* ---- goodness-of-fit testers -------------------------------------- *)

let laplace_cdf x = Check.Dist.laplace_cdf ~eps:0.7 ~sensitivity:1.0 x

let test_ks_accepts_and_rejects r =
  let good = Array.init 4000 (fun _ -> Prim.Laplace.noise r ~eps:0.7 ~sensitivity:1.0) in
  let ks = Check.Stats.ks_test ~cdf:laplace_cdf good in
  check_true
    (Printf.sprintf "correct scale accepted (p = %.4f)" ks.Check.Stats.p_value)
    (ks.Check.Stats.p_value > 0.001);
  (* Half the intended noise scale must be rejected overwhelmingly. *)
  let bad = Array.map (fun x -> 0.5 *. x) good in
  let ks = Check.Stats.ks_test ~cdf:laplace_cdf bad in
  check_true
    (Printf.sprintf "wrong scale rejected (p = %.2g)" ks.Check.Stats.p_value)
    (ks.Check.Stats.p_value < 1e-6)

let test_ad_accepts_and_rejects r =
  let good = Array.init 4000 (fun _ -> Prim.Laplace.noise r ~eps:0.7 ~sensitivity:1.0) in
  let ad = Check.Stats.ad_test ~cdf:laplace_cdf good in
  check_true
    (Printf.sprintf "correct scale accepted (A2 = %.3f)" ad.Check.Stats.a2)
    (ad.Check.Stats.a2 < Check.Stats.ad_critical ~significance:0.01);
  let bad = Array.map (fun x -> 0.5 *. x) good in
  let ad = Check.Stats.ad_test ~cdf:laplace_cdf bad in
  check_true
    (Printf.sprintf "wrong scale rejected (A2 = %.1f)" ad.Check.Stats.a2)
    (ad.Check.Stats.a2 > Check.Stats.ad_critical ~significance:0.005)

let test_chi2_pools_and_rejects r =
  let expected = [| 0.5; 0.3; 0.15; 0.05 |] in
  let sample p rng =
    let u = Prim.Rng.float rng 1. in
    let rec go i acc = if u <= acc +. p.(i) || i = 3 then i else go (i + 1) (acc +. p.(i)) in
    go 0 0.
  in
  let counts p =
    let c = Array.make 4 0 in
    for _ = 1 to 4000 do
      let i = sample p r in
      c.(i) <- c.(i) + 1
    done;
    c
  in
  let ok = Check.Stats.chi2_test ~expected ~observed:(counts expected) in
  check_true
    (Printf.sprintf "matching law accepted (p = %.4f)" ok.Check.Stats.p_value)
    (ok.Check.Stats.p_value > 0.001);
  let skewed = Check.Stats.chi2_test ~expected ~observed:(counts [| 0.25; 0.25; 0.25; 0.25 |]) in
  check_true
    (Printf.sprintf "wrong law rejected (p = %.2g)" skewed.Check.Stats.p_value)
    (skewed.Check.Stats.p_value < 1e-6)

(* ---- exact reference laws ----------------------------------------- *)

let test_exp_mech_law () =
  let qualities = [| 3.; 5.; 4.; 1. |] in
  let p = Check.Dist.exp_mech_law ~eps:0.8 ~sensitivity:1.0 ~qualities in
  check_float ~tol:1e-12 "law sums to 1" 1. (Array.fold_left ( +. ) 0. p);
  (* Softmax ratio law: p_i/p_j = exp(eps (q_i - q_j) / 2). *)
  check_float ~tol:1e-9 "ratio law" (exp (0.8 *. (5. -. 3.) /. 2.)) (p.(1) /. p.(0))

let test_stability_hist_law () =
  (* Singleton fresh cell: released exactly when 1 + Lap(2/ε) clears the
     threshold 1 + (2/ε)·ln(2/δ), i.e. with probability δ/4. *)
  let eps = 1.0 and delta = 1e-4 in
  let law = Check.Dist.stability_hist_law ~eps ~delta [ ("only", 1) ] in
  check_int "law has k+1 entries" 2 (Array.length law);
  check_float ~tol:1e-7 "release prob = delta/4" (delta /. 4.) law.(0);
  check_float ~tol:1e-7 "none prob = 1 - delta/4" (1. -. (delta /. 4.)) law.(1);
  (* Multi-cell law remains a probability vector, dominated by the heavy
     cell once counts clear the threshold comfortably. *)
  let law = Check.Dist.stability_hist_law ~eps ~delta [ ("a", 60); ("b", 40) ] in
  check_float ~tol:1e-6 "multi-cell law sums to 1" 1. (Array.fold_left ( +. ) 0. law);
  check_true "heavy cell dominates" (law.(0) > 0.9)

(* ---- distinguisher verdict logic on synthetic counts --------------- *)

let test_verdict_logic () =
  let events = [ "e" ] in
  (* 900/1000 vs 100/1000: loss ≈ ln 9.  Claimed ε = 0.1 must be violated;
     claimed ε = 3 must not. *)
  let verdict eps =
    Check.Distinguisher.verdict ~claimed:(Prim.Dp.pure ~eps) ~events ~left:(1000, [| 900 |])
      ~right:(1000, [| 100 |]) ()
  in
  let v = verdict 0.1 in
  check_true "gross gap flagged at eps=0.1" v.Check.Distinguisher.violation;
  check_true
    (Printf.sprintf "certified loss %.2f below true ln 9" v.Check.Distinguisher.eps_lb)
    (v.Check.Distinguisher.eps_lb > 1.5 && v.Check.Distinguisher.eps_lb < log 9.);
  check_true "same gap legal at eps=3" (not (verdict 3.0).Check.Distinguisher.violation);
  (* delta absorbs a small event: 30/10000 vs 0/10000 under (0.1, 0.01). *)
  let v =
    Check.Distinguisher.verdict
      ~claimed:(Prim.Dp.v ~eps:0.1 ~delta:0.01)
      ~events ~left:(10_000, [| 30 |]) ~right:(10_000, [| 0 |]) ()
  in
  check_true "delta absorbs a rare event" (not v.Check.Distinguisher.violation);
  (* ...but not a large one. *)
  let v =
    Check.Distinguisher.verdict
      ~claimed:(Prim.Dp.v ~eps:0.1 ~delta:0.01)
      ~events ~left:(10_000, [| 3000 |]) ~right:(10_000, [| 100 |]) ()
  in
  check_true "large gap not absorbed" v.Check.Distinguisher.violation

let test_verdict_symmetry () =
  (* The inequality is checked in both directions: a gap hidden on the
     right side is caught too. *)
  let v =
    Check.Distinguisher.verdict ~claimed:(Prim.Dp.pure ~eps:0.1) ~events:[ "e" ]
      ~left:(1000, [| 100 |]) ~right:(1000, [| 900 |]) ()
  in
  check_true "right-side gap flagged" v.Check.Distinguisher.violation

(* ---- the suite registry -------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fast_cfg =
  { Check.Suite.default with Check.Suite.seed = suite_seed; trials = 2500; domains = 2 }

let test_suite_fast_checks () =
  let results = Check.Suite.run ~only:[ "laplace"; "exp_mech" ] fast_cfg in
  check_int "laplace + exp_mech checks" 5 (List.length results);
  List.iter
    (fun (r : Check.Suite.result) ->
      check_true (r.Check.Suite.name ^ " passes") (r.Check.Suite.status = Check.Suite.Pass))
    results;
  (* The JSON report is well-formed enough to round-trip names. *)
  let json = Engine.Json.to_string (Check.Suite.report_json fast_cfg results) in
  check_true "report mentions laplace/ks"
    (String.length json > 0
    && contains json "laplace/ks"
    && contains json "\"violations\": 0")

let test_suite_names_registered () =
  let names = Check.Suite.names () in
  List.iter
    (fun expected ->
      check_true (expected ^ " registered") (List.mem expected names))
    [
      "laplace/ks"; "laplace/ad"; "gaussian/ks"; "gaussian/ad"; "exp_mech/chi2";
      "stability_hist/chi2"; "laplace/dp"; "gaussian/dp"; "exp_mech/dp"; "noisy_max/dp";
      "sparse_vector/dp"; "stability_hist/dp"; "noisy_avg/dp"; "good_radius/dp";
      "one_cluster/dp"; "engine_fallback/dp"; "one_cluster/utility";
    ]

(* Determinism: the fan-out shards trials over a fixed chunk count, so the
   verdict is bit-identical for any worker-domain count. *)
let test_suite_domain_independence () =
  let run domains =
    Check.Suite.run ~only:[ "laplace/ks" ] { fast_cfg with Check.Suite.domains }
  in
  match (run 1, run 4) with
  | [ a ], [ b ] ->
      check_true "same detail across domain counts" (a.Check.Suite.detail = b.Check.Suite.detail)
  | _ -> Alcotest.fail "expected exactly one result per run"

(* ---- deep tier ------------------------------------------------------ *)

let deep_cfg =
  { Check.Suite.default with Check.Suite.seed = suite_seed; trials = 8000; domains = 4 }

let test_deep_composites () =
  let results =
    Check.Suite.run ~only:[ "good_radius/dp"; "one_cluster/dp"; "engine_fallback/dp" ] deep_cfg
  in
  check_int "three composite checks" 3 (List.length results);
  List.iter
    (fun (r : Check.Suite.result) ->
      if r.Check.Suite.status <> Check.Suite.Pass then
        Alcotest.failf "%s: %s" r.Check.Suite.name r.Check.Suite.detail)
    results

let test_deep_utility () =
  match Check.Suite.run ~only:[ "one_cluster/utility" ] deep_cfg with
  | [ r ] ->
      if r.Check.Suite.status <> Check.Suite.Pass then
        Alcotest.failf "utility certification: %s" r.Check.Suite.detail
  | _ -> Alcotest.fail "expected exactly one utility result"

let suite =
  [
    case "special functions vs closed forms" test_special_functions;
    case "clopper-pearson closed forms" test_clopper_pearson;
    stat_case "ks accepts right / rejects wrong scale" test_ks_accepts_and_rejects;
    stat_case "ad accepts right / rejects wrong scale" test_ad_accepts_and_rejects;
    stat_case "chi2 accepts right / rejects wrong law" test_chi2_pools_and_rejects;
    case "exponential-mechanism law" test_exp_mech_law;
    case "stability-histogram law" test_stability_hist_law;
    case "distinguisher verdict logic" test_verdict_logic;
    case "distinguisher checks both directions" test_verdict_symmetry;
    slow_case "suite fast checks pass" test_suite_fast_checks;
    case "suite registry complete" test_suite_names_registered;
    slow_case "suite verdicts domain-independent" test_suite_domain_independence;
  ]
  @ deep_case "deep: composite distinguishers" (fun _ -> test_deep_composites ())
  @ deep_case "deep: utility certification" (fun _ -> test_deep_utility ())
