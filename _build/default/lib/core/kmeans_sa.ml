type result = {
  centers : Geometry.Vec.t array;
  stable_radius : float;
  sa : Sample_aggregate.result;
}

let run rng profile ~axis_size ~eps ~delta ~beta ~k ~block_size ~alpha points =
  if k < 1 then invalid_arg "Kmeans_sa.run: k must be >= 1";
  if Array.length points = 0 then invalid_arg "Kmeans_sa.run: empty input";
  let d = Geometry.Vec.dim points.(0) in
  let grid = Geometry.Grid.create ~axis_size ~dim:(k * d) in
  (* The off-the-shelf analysis: Lloyd on one block, canonically ordered and
     flattened into R^{k·d}.  It draws its seeding randomness from a stream
     split off the caller's — the analysis may be arbitrarily randomized,
     privacy comes only from the aggregation. *)
  let lloyd_rng = Prim.Rng.split rng in
  let f block =
    let km = Geometry.Kmeans.lloyd lloyd_rng ~k block in
    Geometry.Kmeans.flatten km.Geometry.Kmeans.centers
  in
  match
    Sample_aggregate.run rng profile ~grid ~eps ~delta ~beta ~m:block_size ~alpha ~f points
  with
  | Error e -> Error e
  | Ok sa ->
      Ok
        {
          centers = Geometry.Kmeans.unflatten ~d sa.Sample_aggregate.stable_point;
          stable_radius = sa.Sample_aggregate.stable_radius;
          sa;
        }
