(* The observability layer: span collection and tree well-formedness under
   engine fan-out, budget attribution against the accountant ledger (all
   composition modes, fallback commit/release, retry replay), the Chrome
   trace exporter's schema, the JSON parser, and Prometheus exposition.
   Tracing must also be inert: enabling it draws no randomness and a
   disabled collector records nothing. *)

open Testutil

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Tracing state is global; every test runs inside this bracket so a
   failure cannot leak an enabled collector into other suites. *)
let with_tracing f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

(* --- batch fixtures ------------------------------------------------------ *)

let oc ?(eps = 0.4) ?(delta = 1e-7) ?deadline_s ?(fallback = false) id =
  {
    Engine.Job.id;
    kind = Engine.Job.One_cluster { t_fraction = 0.45 };
    eps;
    delta;
    beta = 0.1;
    deadline_s;
    fallback;
  }

let qt ?(eps = 0.1) id =
  {
    Engine.Job.id;
    kind = Engine.Job.Quantile { axis = 0; q = 0.5 };
    eps;
    delta = 0.;
    beta = 0.1;
    deadline_s = None;
    fallback = false;
  }

(* One traced batch on a small planted workload; returns the results, the
   attribution report and the collected spans. *)
let traced_batch ?(domains = 2) ?(retries = 0) ?(faults = Engine.Faults.none) ?mode
    ?(budget_eps = 2.0) ?(n = 400) ?(axis = 128) ?(radius = 0.06) specs =
  let service = Engine.Service.create ~domains ~seed:5 ~retries ~faults () in
  let _, grid, w = small_workload ~n ~axis ~radius () in
  let dataset =
    Engine.Service.register service ~name:"obs-test" ~grid ?mode
      ~budget:(Prim.Dp.v ~eps:budget_eps ~delta:1e-4)
      w.Workload.Synth.points
  in
  let results = Engine.Service.run_batch service ~dataset specs in
  let report = Engine.Service.attribution ~dataset () in
  (results, report, Obs.Span.spans ())

let admitted results =
  List.filter_map
    (fun (r : Engine.Job.result) ->
      match r.Engine.Job.status with
      | Engine.Job.Refused _ -> None
      | _ -> Some r.Engine.Job.spec.Engine.Job.id)
    results

(* --- span-tree well-formedness ------------------------------------------- *)

let end_ns (sp : Obs.Span.span) = Int64.add sp.Obs.Span.start_ns sp.Obs.Span.dur_ns

let check_well_formed spans =
  let ids = Hashtbl.create 64 in
  List.iter
    (fun (sp : Obs.Span.span) ->
      if Hashtbl.mem ids sp.Obs.Span.id then Alcotest.failf "duplicate span id %d" sp.Obs.Span.id;
      Hashtbl.replace ids sp.Obs.Span.id sp)
    spans;
  List.iter
    (fun (sp : Obs.Span.span) ->
      if sp.Obs.Span.dur_ns < 0L then Alcotest.failf "span %s: negative duration" sp.Obs.Span.name;
      match sp.Obs.Span.parent with
      | None -> ()
      | Some pid -> (
          match Hashtbl.find_opt ids pid with
          | None -> Alcotest.failf "span %s: dangling parent id %d" sp.Obs.Span.name pid
          | Some parent ->
              if sp.Obs.Span.start_ns < parent.Obs.Span.start_ns then
                Alcotest.failf "span %s starts before its parent %s" sp.Obs.Span.name
                  parent.Obs.Span.name;
              if end_ns sp > end_ns parent then
                Alcotest.failf "span %s ends after its parent %s" sp.Obs.Span.name
                  parent.Obs.Span.name))
    spans

let batch_root spans =
  match List.filter (fun (sp : Obs.Span.span) -> sp.Obs.Span.cat = "batch") spans with
  | [ b ] -> b
  | l -> Alcotest.failf "expected exactly one batch span, got %d" (List.length l)

let test_tree_under_fan_out () =
  let prop (n_jobs, domains) =
    with_tracing @@ fun () ->
    let specs = List.init n_jobs (fun i -> qt ~eps:0.05 (Printf.sprintf "q%d" i)) in
    let results, report, spans = traced_batch ~domains specs in
    check_well_formed spans;
    let batch = batch_root spans in
    check_true "batch span is a root" (batch.Obs.Span.parent = None);
    check_true "batch span has duration" (batch.Obs.Span.dur_ns > 0L);
    (* Every admitted job produced exactly one execution root stitched to
       the batch span, labelled with its id; refused jobs produced none. *)
    let job_spans =
      List.filter (fun (sp : Obs.Span.span) -> sp.Obs.Span.cat = "job") spans
    in
    List.iter
      (fun (sp : Obs.Span.span) ->
        check_true "job span parented to the batch span"
          (sp.Obs.Span.parent = Some batch.Obs.Span.id))
      job_spans;
    let ids = admitted results in
    check_int "one job span per admitted job" (List.length ids) (List.length job_spans);
    List.iter
      (fun id ->
        check_true ("execution span for " ^ id)
          (List.exists (fun (sp : Obs.Span.span) -> sp.Obs.Span.label = Some id) job_spans))
      ids;
    (* Coordinator phases bracket the execution. *)
    List.iter
      (fun phase ->
        check_true (phase ^ " present")
          (List.exists (fun (sp : Obs.Span.span) -> sp.Obs.Span.name = phase) spans))
      [ "service.admission"; "service.settlement" ];
    check_true "attribution reconciles" (report.Obs.Attribution.ok && report.Obs.Attribution.exact);
    true
  in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:8 ~name:"span tree under pool fan-out"
       QCheck2.Gen.(pair (1 -- 5) (1 -- 4))
       prop)

(* --- budget reconciliation ----------------------------------------------- *)

let find_line (report : Obs.Attribution.report) label =
  match List.find_opt (fun (l : Obs.Attribution.line) -> l.Obs.Attribution.label = label)
          report.Obs.Attribution.lines
  with
  | Some l -> l
  | None -> Alcotest.failf "no attribution line for %S" label

(* zCDP needs headroom: converting even one (0.4, 1e-7) charge back to
   approximate DP at slack 1e-9 lands near ε = 2.7. *)
let reconciliation_for ?budget_eps mode () =
  with_tracing @@ fun () ->
  let specs = [ oc "a"; qt "b"; oc ~eps:0.5 "c"; oc ~eps:50.0 "greedy" ] in
  let _, report, _ = traced_batch ?mode ?budget_eps specs in
  check_true "report ok" report.Obs.Attribution.ok;
  check_true "report exact" report.Obs.Attribution.exact;
  List.iter
    (fun label ->
      let l = find_line report label in
      check_true (label ^ " events match ledger") l.Obs.Attribution.events_ok;
      check_true (label ^ " exact") l.Obs.Attribution.exact)
    [ "a"; "b"; "c" ];
  (* The refused job never reached the ledger or the workers. *)
  check_true "no line for the refused job"
    (not
       (List.exists
          (fun (l : Obs.Attribution.line) -> l.Obs.Attribution.label = "greedy")
          report.Obs.Attribution.lines));
  (* The pipeline's invocation arguments are what lands in the ledger. *)
  let a = find_line report "a" in
  check_float ~tol:1e-12 "ledger eps is the job price" 0.4 a.Obs.Attribution.ledger.Obs.Span.eps;
  check_float ~tol:1e-18 "ledger delta is the job price" 1e-7
    a.Obs.Attribution.ledger.Obs.Span.delta

let test_reconcile_basic = reconciliation_for None
let test_reconcile_advanced = reconciliation_for (Some (Engine.Accountant.Advanced { slack = 1e-9 }))
let test_reconcile_zcdp =
  reconciliation_for ~budget_eps:8.0 (Some (Engine.Accountant.Zcdp { slack = 1e-9 }))

let test_reconcile_fallback_commit () =
  with_tracing @@ fun () ->
  (* deadline=0 forces degradation: the reserved GoodRadius share is
     committed under the <id>:fallback label and must reconcile exactly
     against the fallback's execution span. *)
  let specs = [ oc "main"; oc ~deadline_s:0. ~fallback:true "slow" ] in
  let results, report, spans = traced_batch ~domains:2 specs in
  let degraded =
    List.exists
      (fun (r : Engine.Job.result) ->
        r.Engine.Job.spec.Engine.Job.id = "slow"
        && match r.Engine.Job.status with Engine.Job.Degraded _ -> true | _ -> false)
      results
  in
  check_true "slow degraded" degraded;
  check_true "report ok" report.Obs.Attribution.ok;
  check_true "report exact" report.Obs.Attribution.exact;
  let fb = find_line report "slow:fallback" in
  check_true "fallback committed and reconciled"
    (fb.Obs.Attribution.events_ok && fb.Obs.Attribution.exact);
  check_float ~tol:1e-12 "fallback price is the GoodRadius share" 0.2
    fb.Obs.Attribution.ledger.Obs.Span.eps;
  (* A commit budget event exists; the full job kept its admission charge
     even though it never produced a result. *)
  check_true "commit event present"
    (List.exists
       (fun (sp : Obs.Span.span) ->
         sp.Obs.Span.cat = "budget" && sp.Obs.Span.name = "commit"
         && sp.Obs.Span.label = Some "slow:fallback")
       spans);
  let slow = find_line report "slow" in
  check_float ~tol:1e-12 "blown job keeps its charge" 0.4 slow.Obs.Attribution.ledger.Obs.Span.eps

let test_reconcile_fallback_release () =
  with_tracing @@ fun () ->
  (* A fallback job that succeeds releases its reservation: a release
     event, no :fallback ledger line, and the report stays exact.  The
     solver needs the bigger planted workload to actually succeed at this
     ε (on the 400-point one it degrades and would commit instead). *)
  let specs = [ oc ~eps:1.0 ~fallback:true "fine" ] in
  let results, report, spans = traced_batch ~domains:1 ~n:1500 ~axis:256 ~radius:0.05 specs in
  check_true "fine completed"
    (List.exists
       (fun (r : Engine.Job.result) ->
         match r.Engine.Job.status with Engine.Job.Completed _ -> true | _ -> false)
       results);
  check_true "report ok and exact" (report.Obs.Attribution.ok && report.Obs.Attribution.exact);
  check_true "no fallback line"
    (not
       (List.exists
          (fun (l : Obs.Attribution.line) -> l.Obs.Attribution.label = "fine:fallback")
          report.Obs.Attribution.lines));
  check_true "release event present"
    (List.exists
       (fun (sp : Obs.Span.span) -> sp.Obs.Span.cat = "budget" && sp.Obs.Span.name = "release")
       spans)

let test_reconcile_retry_replay () =
  with_tracing @@ fun () ->
  (* A crash-before-output fault on job 0: the retry replays the same RNG
     stream, so both attempts' spans exist but only the clean one counts,
     and the replay attributes exactly the ledger charge. *)
  let faults = Engine.Faults.explicit [ (0, Engine.Faults.rule Engine.Faults.Crash) ] in
  let specs = [ qt "crashy"; qt "calm" ] in
  let results, report, spans = traced_batch ~domains:2 ~retries:2 ~faults specs in
  check_true "crashy recovered"
    (List.exists
       (fun (r : Engine.Job.result) ->
         r.Engine.Job.spec.Engine.Job.id = "crashy"
         && (match r.Engine.Job.status with Engine.Job.Completed _ -> true | _ -> false)
         && r.Engine.Job.attempts > 1)
       results);
  check_true "a retry event was recorded"
    (List.exists
       (fun (sp : Obs.Span.span) -> sp.Obs.Span.cat = "pool" && sp.Obs.Span.name = "pool.retry")
       spans);
  let attempts =
    List.filter
      (fun (sp : Obs.Span.span) ->
        sp.Obs.Span.cat = "job" && sp.Obs.Span.label = Some "crashy")
      spans
  in
  check_true "both attempts left spans" (List.length attempts >= 2);
  check_true "report ok" report.Obs.Attribution.ok;
  check_true "report exact" report.Obs.Attribution.exact;
  let l = find_line report "crashy" in
  check_true "retry attempts consistent" l.Obs.Attribution.retry_consistent

let test_reconcile_detects_mismatch () =
  (* Attribution is a checker, not a formality: feed it a cooked ledger
     and it must fail (events mismatch), and an execution charge above
     the ledger must flag overspend. *)
  with_tracing @@ fun () ->
  Obs.Span.with_span ~cat:"job" "one_cluster" (fun () ->
      Obs.Span.set_label "j1";
      Obs.Span.with_charged ~eps:0.4 ~delta:0. "laplace" (fun () -> ()));
  Obs.Span.event ~cat:"budget" ~label:"j1"
    ~charge:(Obs.Span.charge ~eps:0.4 ~delta:0. ())
    "charge";
  let spans = Obs.Span.spans () in
  let good = Obs.Attribution.reconcile ~ledger:[ ("j1", Obs.Span.charge ~eps:0.4 ~delta:0. ()) ] spans in
  check_true "consistent view passes" (good.Obs.Attribution.ok && good.Obs.Attribution.exact);
  let cooked =
    Obs.Attribution.reconcile ~ledger:[ ("j1", Obs.Span.charge ~eps:0.3 ~delta:0. ()) ] spans
  in
  check_true "cooked ledger fails" (not cooked.Obs.Attribution.ok);
  let l = find_line cooked "j1" in
  check_true "events mismatch flagged" (not l.Obs.Attribution.events_ok);
  check_true "overspend flagged" l.Obs.Attribution.overspend

(* --- tracing is inert ----------------------------------------------------- *)

let details results = List.map Engine.Job.detail results

let test_tracing_draws_no_randomness () =
  let specs = [ oc "a"; qt "b"; oc ~eps:0.5 ~fallback:true "c" ] in
  Obs.Span.reset ();
  Obs.Span.set_enabled false;
  let plain, _, _ = traced_batch ~domains:2 specs in
  let traced, _, spans = with_tracing (fun () -> traced_batch ~domains:2 specs) in
  check_true "tracing collected spans" (List.length spans > 0);
  List.iter2 (fun a b -> Alcotest.(check string) "output bit-identical under tracing" a b)
    (details plain) (details traced)

let test_disabled_collector_records_nothing () =
  Obs.Span.reset ();
  check_true "disabled" (not (Obs.Span.enabled ()));
  let v =
    Obs.Span.with_span "outer" (fun () ->
        Obs.Span.event "instant";
        Obs.Span.set_attr "k" (Obs.Span.I 1);
        Obs.Span.with_charged ~eps:1.0 ~delta:0. "inner" (fun () -> 17))
  in
  check_int "value passes through" 17 v;
  check_int "nothing collected" 0 (Obs.Span.count ());
  check_true "no current span" (Obs.Span.current () = None)

let test_attributed_convention () =
  with_tracing @@ fun () ->
  (* A stage's own charge wins over its children's sum (the budgeted-share
     convention); an uncharged stage sums its children. *)
  Obs.Span.with_charged ~cat:"stage" ~eps:1.0 ~delta:0. "stage" (fun () ->
      Obs.Span.with_charged ~eps:0.3 ~delta:0. "m1" (fun () -> ());
      Obs.Span.with_charged ~eps:0.3 ~delta:0. "m2" (fun () -> ()));
  Obs.Span.with_span ~cat:"stage" "uncharged" (fun () ->
      Obs.Span.with_charged ~eps:0.25 ~delta:1e-8 "m3" (fun () -> ()));
  let spans = Obs.Span.spans () in
  let find name =
    List.find (fun (sp : Obs.Span.span) -> sp.Obs.Span.name = name) spans
  in
  let c1 = Obs.Span.attributed spans (find "stage") in
  check_float ~tol:1e-12 "own charge wins" 1.0 c1.Obs.Span.eps;
  let c2 = Obs.Span.attributed spans (find "uncharged") in
  check_float ~tol:1e-12 "children sum" 0.25 c2.Obs.Span.eps;
  check_float ~tol:1e-18 "children delta sums" 1e-8 c2.Obs.Span.delta

(* --- Chrome trace export -------------------------------------------------- *)

let test_trace_schema () =
  let _, _, spans =
    with_tracing (fun () -> traced_batch ~domains:2 [ oc "a"; qt "b" ])
  in
  let doc = Obs.Trace.to_json spans in
  (* The serialized document parses back and validates. *)
  (match Obs.Json.parse (Obs.Trace.to_string spans) with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok parsed -> (
      match Obs.Trace.validate parsed with
      | Error e -> Alcotest.failf "trace does not validate: %s" e
      | Ok () -> ()));
  (* Golden shape: every complete event carries the Chrome-required keys
     and our args payload. *)
  let events =
    match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  check_true "one event per span plus thread metadata"
    (List.length events >= List.length spans);
  let an_x =
    List.find_opt
      (fun e ->
        match Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str with
        | Some "X" -> true
        | _ -> false)
      events
  in
  (match an_x with
  | None -> Alcotest.fail "no complete (ph=X) event in the trace"
  | Some e ->
      List.iter
        (fun key ->
          check_true ("complete event has " ^ key) (Obs.Json.member key e <> None))
        [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ];
      check_true "args carry the span id"
        (Option.bind (Obs.Json.member "args" e) (Obs.Json.member "span_id") <> None));
  (* Thread-name metadata is present so Perfetto labels the lanes. *)
  check_true "thread_name metadata emitted"
    (List.exists
       (fun e ->
         match Option.bind (Obs.Json.member "name" e) Obs.Json.to_str with
         | Some "thread_name" -> true
         | _ -> false)
       events)

let test_trace_validate_rejects_malformed () =
  let reject doc what =
    match Obs.Trace.validate doc with
    | Ok () -> Alcotest.failf "validate accepted %s" what
    | Error _ -> ()
  in
  reject (Obs.Json.Obj []) "a document without traceEvents";
  reject
    (Obs.Json.Obj [ ("traceEvents", Obs.Json.List [ Obs.Json.Obj [ ("cat", Obs.Json.String "x") ] ]) ])
    "an event without a name";
  reject
    (Obs.Json.Obj
       [
         ( "traceEvents",
           Obs.Json.List
             [
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String "e");
                   ("cat", Obs.Json.String "c");
                   ("ph", Obs.Json.String "Q");
                   ("ts", Obs.Json.Float 0.);
                   ("pid", Obs.Json.Int 1);
                   ("tid", Obs.Json.Int 0);
                 ];
             ] );
       ])
    "an unknown phase"

(* --- JSON parser ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a \"quoted\" line\nwith\ttabs and \\ slashes");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5);
        ("b", Obs.Json.Bool true);
        ("nothing", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.25; Obs.Json.String "x" ]);
        ("nested", Obs.Json.Obj [ ("empty_l", Obs.Json.List []); ("empty_o", Obs.Json.Obj []) ]);
      ]
  in
  (match Obs.Json.parse (Obs.Json.to_string doc) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok parsed -> check_true "roundtrip preserves the document" (parsed = doc));
  (* Escapes decode, including a surrogate pair. *)
  (match Obs.Json.parse {|"café 😀"|} with
  | Ok (Obs.Json.String s) ->
      check_true "unicode escapes decode to UTF-8" (s = "caf\xc3\xa9 \xf0\x9f\x98\x80")
  | _ -> Alcotest.fail "unicode string did not parse");
  (* Malformed inputs are rejected, not mangled. *)
  List.iter
    (fun bad ->
      match Obs.Json.parse bad with
      | Ok _ -> Alcotest.failf "parse accepted %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "01"; "1 trailing"; "\"unterminated"; "nul"; "{\"a\" 1}"; "" ]

(* --- Prometheus exposition ------------------------------------------------ *)

let test_prom_render () =
  let open Obs.Prom in
  let text =
    render
      [
        Counter
          {
            name = "jobs_total";
            help = "Finished \"jobs\".";
            samples = [ ([ ("kind", "one_cluster") ], 3.) ];
          };
        Histogram
          {
            name = "lat_ms";
            help = "Latency.";
            samples =
              [
                ( [],
                  { bounds = [| 1.; 5. |]; counts = [| 2; 1 |]; sum = 9.5; count = 4 } );
              ];
          };
      ]
  in
  List.iter
    (fun needle -> check_true ("render contains " ^ needle) (contains_sub text needle))
    [
      "# HELP jobs_total";
      "# TYPE jobs_total counter";
      "jobs_total{kind=\"one_cluster\"} 3";
      "# TYPE lat_ms histogram";
      "lat_ms_bucket{le=\"1\"} 2";
      (* Cumulative: 2 under 1ms + 1 more under 5ms. *)
      "lat_ms_bucket{le=\"5\"} 3";
      (* +Inf equals the total observation count (one overflow sample). *)
      "lat_ms_bucket{le=\"+Inf\"} 4";
      "lat_ms_sum 9.5";
      "lat_ms_count 4";
    ]

let test_prom_of_spans_and_exposition () =
  let _, _, spans =
    with_tracing (fun () -> traced_batch ~domains:1 [ oc "a"; qt "b" ])
  in
  let text = Obs.Prom.render (Obs.Prom.of_spans spans) in
  List.iter
    (fun needle -> check_true ("of_spans contains " ^ needle) (contains_sub text needle))
    [
      "privcluster_spans_total{name=\"laplace\",cat=\"mech\"}";
      "privcluster_span_epsilon_total";
    ];
  (* A saved report round-trips through the post-hoc exposition path.
     The bigger workload makes the one_cluster job genuinely succeed so
     the status="ok" sample is meaningful. *)
  let service = Engine.Service.create ~domains:1 ~seed:6 ~faults:Engine.Faults.none () in
  let _, grid, w = small_workload ~n:1500 ~axis:256 ~radius:0.05 () in
  let dataset =
    Engine.Service.register service ~name:"expo" ~grid
      ~budget:(Prim.Dp.v ~eps:2.0 ~delta:1e-4)
      w.Workload.Synth.points
  in
  let results = Engine.Service.run_batch service ~dataset [ oc ~eps:1.0 "a"; qt "b" ] in
  let report = Engine.Service.report_json service ~dataset results in
  match Obs.Json.parse (Engine.Json.to_string report) with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok doc -> (
      match Engine.Exposition.of_report_json doc with
      | Error e -> Alcotest.failf "of_report_json: %s" e
      | Ok families ->
          let text = Obs.Prom.render families in
          List.iter
            (fun needle ->
              check_true ("post-hoc exposition contains " ^ needle) (contains_sub text needle))
            [
              "privcluster_jobs_total{kind=\"one_cluster\",status=\"ok\"} 1";
              "privcluster_jobs_total{kind=\"quantile\",status=\"ok\"} 1";
              "privcluster_job_latency_ms_bucket";
              "privcluster_budget_epsilon{dataset=\"expo\",quantity=\"budget\"} 2";
              "privcluster_budget_refusals_total{dataset=\"expo\"} 0";
            ])

(* --- latency histograms --------------------------------------------------- *)

(* Nanosecond observations spanning the bucket range, including exact
   bucket bounds and the overflow region past the last bound. *)
let ns_gen =
  QCheck2.Gen.(
    oneof
      [
        0 -- 2000;
        map (fun i -> Obs.Hist.bucket_bounds_ns.(i)) (0 -- (Array.length Obs.Hist.bucket_bounds_ns - 1));
        map (fun i -> Obs.Hist.bucket_bounds_ns.(i) + 1) (0 -- (Array.length Obs.Hist.bucket_bounds_ns - 1));
        50_000_000_000 -- 60_000_000_000;
        0 -- 100_000_000;
      ])

let snap_of ?(shards = 1) values =
  let h = Obs.Hist.create ~shards () in
  List.iter (fun v -> Obs.Hist.observe_ns ~shard:0 h v) values;
  Obs.Hist.snapshot h

let test_hist_empty_and_singleton () =
  let e = Obs.Hist.empty in
  check_int "empty count" 0 e.Obs.Hist.count;
  check_true "empty quantile is nan" (Float.is_nan (Obs.Hist.quantile_ns e ~q:0.5));
  check_true "empty mean is nan" (Float.is_nan (Obs.Hist.mean_ns e));
  check_true "empty snapshot of a fresh histogram"
    (Obs.Hist.snapshot (Obs.Hist.create ()) = e);
  (* Clamped to observed min..max, a singleton reports every quantile as
     exactly the observed value — even though the bucket is ~41% wide. *)
  let s = snap_of [ 123_456 ] in
  List.iter
    (fun q ->
      check_float ~tol:1e-9 (Printf.sprintf "singleton q=%g exact" q) 123_456.
        (Obs.Hist.quantile_ns s ~q))
    [ 0.; 0.25; 0.5; 0.9; 0.99; 1. ];
  check_int "singleton min" 123_456 s.Obs.Hist.min_ns;
  check_int "singleton max" 123_456 s.Obs.Hist.max_ns;
  (* Negative observations clamp to zero rather than corrupting the sum. *)
  let neg = snap_of [ -5 ] in
  check_int "negative clamps to 0" 0 neg.Obs.Hist.sum_ns;
  check_int "negative still counted" 1 neg.Obs.Hist.count

let test_hist_count_sum_exact () =
  let prop values =
    let s = snap_of values in
    check_int "count exact" (List.length values) s.Obs.Hist.count;
    check_int "sum exact" (List.fold_left ( + ) 0 values) s.Obs.Hist.sum_ns;
    check_int "bucket counts cover every observation"
      (List.length values)
      (Array.fold_left ( + ) 0 s.Obs.Hist.counts);
    if values <> [] then begin
      check_int "min exact" (List.fold_left min max_int values) s.Obs.Hist.min_ns;
      check_int "max exact" (List.fold_left max 0 values) s.Obs.Hist.max_ns
    end;
    true
  in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:200 ~name:"hist count/sum exact"
       QCheck2.Gen.(list_size (0 -- 200) ns_gen)
       prop)

let test_hist_quantile_monotone () =
  let prop (values, qs) =
    let s = snap_of values in
    let qs = List.sort compare qs in
    let estimates = List.map (fun q -> Obs.Hist.quantile_ns s ~q) qs in
    List.iter
      (fun est ->
        check_true "quantile within observed min..max"
          (est >= float_of_int s.Obs.Hist.min_ns && est <= float_of_int s.Obs.Hist.max_ns))
      estimates;
    let rec ascending = function
      | a :: (b :: _ as rest) ->
          check_true "quantile monotone in q" (a <= b);
          ascending rest
      | _ -> ()
    in
    ascending estimates;
    true
  in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:200 ~name:"hist quantiles monotone"
       QCheck2.Gen.(
         pair (list_size (1 -- 100) ns_gen) (list_size (2 -- 8) (float_bound_inclusive 1.)))
       prop)

let test_hist_merge_of_shards () =
  (* The tentpole property: a sharded histogram fed a stream scattered
     across shards snapshots identically to a single-shard histogram fed
     the same stream — merging is associative and loss-free. *)
  let prop assignments =
    let sharded = Obs.Hist.create ~shards:8 () in
    let single = Obs.Hist.create ~shards:1 () in
    List.iter
      (fun (v, shard) ->
        Obs.Hist.observe_ns ~shard sharded v;
        Obs.Hist.observe_ns ~shard:0 single v)
      assignments;
    check_true "merged shards == single shard"
      (Obs.Hist.snapshot sharded = Obs.Hist.snapshot single);
    (* Folding [merge] over per-chunk snapshots is the same as one big
       snapshot, in any association order. *)
    let chunks =
      List.mapi (fun i (v, _) -> (i mod 3, v)) assignments
      |> List.fold_left
           (fun acc (c, v) ->
             List.map (fun (c', vs) -> if c = c' then (c', v :: vs) else (c', vs)) acc)
           [ (0, []); (1, []); (2, []) ]
    in
    let merged =
      List.fold_left
        (fun acc (_, vs) -> Obs.Hist.merge acc (snap_of vs))
        Obs.Hist.empty chunks
    in
    check_true "merge of chunk snapshots == whole snapshot"
      (merged = Obs.Hist.snapshot single);
    true
  in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:100 ~name:"hist merge of shards"
       QCheck2.Gen.(list_size (0 -- 150) (pair ns_gen (0 -- 20)))
       prop)

let test_hist_prom_and_json () =
  let s = snap_of [ 1_000; 2_000_000; 3_000_000_000 ] in
  let h = Obs.Hist.to_prom s in
  check_int "prom buckets drop only the overflow"
    (Array.length Obs.Hist.bucket_bounds_ns)
    (Array.length h.Obs.Prom.bounds);
  check_float ~tol:1e-12 "prom sum in seconds" 3.002001 h.Obs.Prom.sum;
  check_int "prom count" 3 h.Obs.Prom.count;
  check_float ~tol:1e-12 "first bound is 1 µs in seconds" 1e-6 h.Obs.Prom.bounds.(0);
  match Obs.Hist.to_json s with
  | Obs.Json.Obj fields ->
      check_true "json carries count" (List.assoc_opt "count" fields = Some (Obs.Json.Int 3));
      check_true "json carries exact sum"
        (List.assoc_opt "sum_ns" fields = Some (Obs.Json.Int 3_002_001_000));
      check_true "json carries quantiles" (List.mem_assoc "p99" fields)
  | _ -> Alcotest.fail "hist json is not an object"

(* --- SLO rules ------------------------------------------------------------ *)

let test_slo_line_roundtrip () =
  let customs =
    [
      Obs.Slo.Latency { verb = Some "run"; q = 0.9; warn_s = 0.123; fire_s = 4.5 };
      Obs.Slo.Burn_rate
        { tenant = Some "acme"; dataset = None; warn_per_hour = 0.25; fire_per_hour = 2. };
      Obs.Slo.Shed_rate { warn = 0.02; fire = 0.2 };
    ]
  in
  List.iter
    (fun r ->
      let line = Obs.Slo.rule_to_line r in
      match Obs.Slo.rule_of_line line with
      | Ok r' -> check_true ("roundtrip: " ^ line) (r = r')
      | Error e -> Alcotest.failf "roundtrip %s: %s" line e)
    (Obs.Slo.default_rules @ customs);
  List.iter
    (fun (line, needle) ->
      match Obs.Slo.rule_of_line line with
      | Ok _ -> Alcotest.failf "accepted malformed rule %S" line
      | Error e ->
          check_true
            (Printf.sprintf "error for %S names the problem (%s)" line e)
            (contains_sub e needle))
    [
      ("", "empty");
      ("latency q warn_ms=1 fire_ms=2", "malformed token");
      ("latency q=2 warn_ms=1 fire_ms=2", "q must be in [0,1]");
      ("latency q=0.5 fire_ms=2", "missing warn_ms=");
      ("burn warn=x fire=1", "bad number for warn");
      ("pager duty=now", "unknown rule kind");
    ]

let test_slo_eval () =
  let latencies = ref [] and burns = ref [] and shed = ref (0., 0) in
  let obs =
    {
      Obs.Slo.latencies = (fun () -> !latencies);
      burn_rates = (fun () -> !burns);
      shed_rate = (fun () -> !shed);
    }
  in
  let one_verdict rule =
    match Obs.Slo.eval obs rule with
    | [ v ] -> v
    | l -> Alcotest.failf "expected one verdict, got %d" (List.length l)
  in
  (* Idle: every default rule is Ok with an explanatory reason. *)
  List.iter
    (fun r ->
      let v = one_verdict r in
      check_true "idle is ok" (v.Obs.Slo.status = Obs.Slo.Ok))
    Obs.Slo.default_rules;
  (* A 1 s p99 warns at warn=0.5s/fire=2s; 3 s fires; wildcard expands
     to one verdict per observed verb. *)
  let lat = Obs.Slo.Latency { verb = None; q = 0.99; warn_s = 0.5; fire_s = 2.0 } in
  latencies := [ ("run", snap_of [ 1_000_000_000 ]); ("epoch", snap_of [ 1_000_000 ]) ];
  let vs = Obs.Slo.eval obs lat in
  check_int "one verdict per observed verb" 2 (List.length vs);
  let by_subject s =
    List.find (fun (v : Obs.Slo.verdict) -> v.Obs.Slo.subject = s) vs
  in
  check_true "slow verb warns" ((by_subject "verb=run").Obs.Slo.status = Obs.Slo.Warn);
  check_true "fast verb ok" ((by_subject "verb=epoch").Obs.Slo.status = Obs.Slo.Ok);
  latencies := [ ("run", snap_of [ 3_000_000_000 ]) ];
  let v = List.hd (Obs.Slo.eval obs lat) in
  check_true "3s p99 fires" (v.Obs.Slo.status = Obs.Slo.Firing);
  check_true "reason carries the measurement" (contains_sub v.Obs.Slo.reason "p99=3000.0ms");
  (* A rule pinned to an unobserved subject reports Ok, not silence. *)
  let pinned = Obs.Slo.Latency { verb = Some "nope"; q = 0.5; warn_s = 0.1; fire_s = 1. } in
  let v = one_verdict pinned in
  check_true "pinned unobserved is ok" (v.Obs.Slo.status = Obs.Slo.Ok);
  check_true "pinned unobserved says why" (contains_sub v.Obs.Slo.reason "no observations");
  (* Burn rate grades against budget-fractions per hour. *)
  let burn =
    Obs.Slo.Burn_rate { tenant = None; dataset = None; warn_per_hour = 0.5; fire_per_hour = 1.0 }
  in
  burns := [ ("acme", "d1", 1.5); ("acme", "d2", 0.1) ];
  let vs = Obs.Slo.eval obs burn in
  check_int "one verdict per tenant x dataset" 2 (List.length vs);
  check_true "hot dataset fires"
    (List.exists
       (fun (v : Obs.Slo.verdict) ->
         v.Obs.Slo.subject = "tenant=acme dataset=d1" && v.Obs.Slo.status = Obs.Slo.Firing)
       vs);
  (* Shed rate: fraction of submissions; thresholds inclusive. *)
  let shed_rule = Obs.Slo.Shed_rate { warn = 0.01; fire = 0.10 } in
  shed := (0.05, 100);
  check_true "5% shed warns" ((one_verdict shed_rule).Obs.Slo.status = Obs.Slo.Warn);
  shed := (0.10, 100);
  check_true "10% shed fires" ((one_verdict shed_rule).Obs.Slo.status = Obs.Slo.Firing);
  (* worst_of and the JSON roundtrip the daemon's health verb relies on. *)
  let all = Obs.Slo.eval_all obs [ lat; burn; shed_rule ] in
  check_true "worst across rules is firing" (Obs.Slo.worst_of all = Obs.Slo.Firing);
  List.iter
    (fun v ->
      match Obs.Slo.verdict_of_json (Obs.Slo.verdict_to_json v) with
      | Some v' -> check_true "verdict json roundtrip" (v = v')
      | None -> Alcotest.fail "verdict json did not parse back")
    all

(* --- Prometheus determinism ----------------------------------------------- *)

let test_prom_deterministic_golden () =
  let open Obs.Prom in
  (* Same families, scrambled construction order and label-set order:
     byte-identical output, pinned in full so any format drift is loud.
     The gauge's label value exercises every escape the spec defines. *)
  let nasty = "a\"x\\y\nz" in
  let counter order =
    Counter { name = "aa_total"; help = "A."; samples = order }
  and gauge order = Gauge { name = "zz_gauge"; help = "Z."; samples = order }
  and summary =
    Summary
      {
        name = "mm_seconds";
        help = "M.";
        samples = [ ([], { quantiles = [ (0.5, 0.25); (0.99, 1.5) ]; sum = 2.; count = 3 }) ];
      }
  in
  let a =
    render
      [
        counter [ ([ ("k", "1") ], 1.); ([ ("k", "2") ], 2.) ];
        summary;
        gauge [ ([ ("t", nasty) ], 1.); ([ ("t", "b") ], 2.) ];
      ]
  and b =
    render
      [
        gauge [ ([ ("t", "b") ], 2.); ([ ("t", nasty) ], 1.) ];
        counter [ ([ ("k", "2") ], 2.); ([ ("k", "1") ], 1.) ];
        summary;
      ]
  in
  Alcotest.(check string) "render independent of construction order" a b;
  let golden =
    "# HELP aa_total A.\n\
     # TYPE aa_total counter\n\
     aa_total{k=\"1\"} 1\n\
     aa_total{k=\"2\"} 2\n\
     # HELP mm_seconds M.\n\
     # TYPE mm_seconds summary\n\
     mm_seconds{quantile=\"0.5\"} 0.25\n\
     mm_seconds{quantile=\"0.99\"} 1.5\n\
     mm_seconds_sum 2\n\
     mm_seconds_count 3\n\
     # HELP zz_gauge Z.\n\
     # TYPE zz_gauge gauge\n\
     zz_gauge{t=\"a\\\"x\\\\y\\nz\"} 1\n\
     zz_gauge{t=\"b\"} 2\n"
  in
  Alcotest.(check string) "exposition text pinned" golden a;
  check_true "escape_label_value escapes quote, backslash, newline"
    (escape_label_value nasty = "a\\\"x\\\\y\\nz")

let suite =
  [
    case "span tree well-formed under pool fan-out (qcheck)" test_tree_under_fan_out;
    case "reconciliation: basic ledger exact" test_reconcile_basic;
    case "reconciliation: advanced ledger exact" test_reconcile_advanced;
    case "reconciliation: zcdp ledger exact" test_reconcile_zcdp;
    case "reconciliation: fallback commit" test_reconcile_fallback_commit;
    case "reconciliation: fallback release" test_reconcile_fallback_release;
    case "reconciliation: retry replays reconcile" test_reconcile_retry_replay;
    case "reconciliation: cooked ledger fails loudly" test_reconcile_detects_mismatch;
    case "tracing draws no randomness" test_tracing_draws_no_randomness;
    case "disabled collector records nothing" test_disabled_collector_records_nothing;
    case "attributed: own charge wins, else children sum" test_attributed_convention;
    case "chrome trace schema" test_trace_schema;
    case "trace validation rejects malformed docs" test_trace_validate_rejects_malformed;
    case "json parser roundtrip and rejection" test_json_roundtrip;
    case "prometheus text format" test_prom_render;
    case "prometheus span families and post-hoc exposition" test_prom_of_spans_and_exposition;
    case "hist: empty and singleton" test_hist_empty_and_singleton;
    case "hist: count/sum exact (qcheck)" test_hist_count_sum_exact;
    case "hist: quantiles monotone and clamped (qcheck)" test_hist_quantile_monotone;
    case "hist: merge of shards == single shard (qcheck)" test_hist_merge_of_shards;
    case "hist: prometheus and json dumps" test_hist_prom_and_json;
    case "slo: rule line roundtrip and rejection" test_slo_line_roundtrip;
    case "slo: evaluation grades and expands subjects" test_slo_eval;
    case "prometheus exposition is deterministic (golden)" test_prom_deterministic_golden;
  ]
