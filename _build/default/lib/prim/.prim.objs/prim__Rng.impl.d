lib/prim/rng.ml: Array Float Random
