(* AboveThreshold (Theorem 4.8). *)

open Testutil

let test_fires_on_clear_signal () =
  let r = rng () in
  let sv = Prim.Sparse_vector.create r ~eps:1.0 ~threshold:100. in
  (* Stream of well-below queries then one well-above. *)
  let fired_early = ref false in
  for _ = 1 to 20 do
    if (not (Prim.Sparse_vector.halted sv)) && Prim.Sparse_vector.query sv 10. = Prim.Sparse_vector.Above
    then fired_early := true
  done;
  check_true "no premature fire on values 90 below threshold" (not !fired_early);
  check_true "fires on value 100 above threshold"
    (Prim.Sparse_vector.query sv 200. = Prim.Sparse_vector.Above);
  check_true "halted" (Prim.Sparse_vector.halted sv);
  check_int "queries counted" 21 (Prim.Sparse_vector.queries_asked sv)

let test_rejects_after_halt () =
  let r = rng () in
  let sv = Prim.Sparse_vector.create r ~eps:1.0 ~threshold:0. in
  ignore (Prim.Sparse_vector.query sv 1000.);
  Alcotest.check_raises "halted mechanism rejects"
    (Invalid_argument "Sparse_vector.query: mechanism already halted") (fun () ->
      ignore (Prim.Sparse_vector.query sv 1.))

let test_accuracy_theorem () =
  (* Run many independent mechanisms; every answer must respect the
     Theorem 4.8 slack at rate >= 1 - beta. *)
  let r = rng () in
  let eps = 0.5 and k = 20 and beta = 0.1 in
  let slack = Prim.Sparse_vector.accuracy_bound ~eps ~k ~beta in
  let threshold = 50. in
  let bad = ref 0 and total = ref 0 in
  for _ = 1 to 300 do
    let sv = Prim.Sparse_vector.create r ~eps ~threshold in
    let rec loop i =
      if i <= k && not (Prim.Sparse_vector.halted sv) then begin
        (* Alternate low and borderline queries. *)
        let v = if i mod 2 = 0 then 20. else 40. in
        incr total;
        (match Prim.Sparse_vector.query sv v with
        | Prim.Sparse_vector.Above -> if v < threshold -. slack then incr bad
        | Prim.Sparse_vector.Below -> if v > threshold +. slack then incr bad);
        loop (i + 1)
      end
    in
    loop 1
  done;
  check_true
    (Printf.sprintf "accuracy violations %d/%d below beta rate" !bad !total)
    (float_of_int !bad /. float_of_int !total < beta)

let test_accuracy_bound_formula () =
  check_float ~tol:1e-9 "formula" (8. /. 0.5 *. log (2. *. 20. /. 0.1))
    (Prim.Sparse_vector.accuracy_bound ~eps:0.5 ~k:20 ~beta:0.1)

let test_threshold_noise_once () =
  (* Two mechanisms with the same rng stream differ only via their own
     draws; sanity: a mechanism with a huge threshold never fires. *)
  let r = rng () in
  let sv = Prim.Sparse_vector.create r ~eps:1.0 ~threshold:1e9 in
  for _ = 1 to 100 do
    if not (Prim.Sparse_vector.halted sv) then
      check_true "never fires below astronomic threshold"
        (Prim.Sparse_vector.query sv 1000. = Prim.Sparse_vector.Below)
  done

let test_multi_firing () =
  let r = rng () in
  let sv = Prim.Sparse_vector.create_multi r ~eps:6.0 ~threshold:50. ~firings:3 in
  check_int "three firings available" 3 (Prim.Sparse_vector.firings_left sv);
  let aboves = ref 0 in
  (* Alternate far-below and far-above queries; must collect exactly three
     Aboves then halt. *)
  (try
     for i = 1 to 100 do
       let v = if i mod 2 = 0 then 500. else -400. in
       if Prim.Sparse_vector.query sv v = Prim.Sparse_vector.Above then incr aboves
     done
   with Invalid_argument _ -> ());
  check_int "exactly three aboves" 3 !aboves;
  check_true "halted after the budget" (Prim.Sparse_vector.halted sv);
  Alcotest.check_raises "rejects afterwards"
    (Invalid_argument "Sparse_vector.query: mechanism already halted") (fun () ->
      ignore (Prim.Sparse_vector.query sv 0.))

let test_multi_firing_validation () =
  let r = rng () in
  Alcotest.check_raises "firings >= 1"
    (Invalid_argument "Sparse_vector.create_multi: firings must be >= 1") (fun () ->
      ignore (Prim.Sparse_vector.create_multi r ~eps:1.0 ~threshold:0. ~firings:0))

let test_numeric_sparse () =
  let r = rng () in
  let sv = Prim.Sparse_vector.create_numeric r ~eps:4.0 ~threshold:100. in
  check_true "below yields None" (Prim.Sparse_vector.query_numeric sv 10. = None);
  (match Prim.Sparse_vector.query_numeric sv 500. with
  | Some v -> check_true (Printf.sprintf "released value near truth (%.1f)" v) (Float.abs (v -. 500.) < 50.)
  | None -> Alcotest.fail "clear signal must fire");
  check_true "halted after release" (Prim.Sparse_vector.halted sv)

let test_numeric_mode_required () =
  let r = rng () in
  let sv = Prim.Sparse_vector.create r ~eps:1.0 ~threshold:0. in
  Alcotest.check_raises "plain mechanism rejects numeric query"
    (Invalid_argument "Sparse_vector.query_numeric: mechanism not built by create_numeric")
    (fun () -> ignore (Prim.Sparse_vector.query_numeric sv 1.))

let suite =
  [
    case "fires on clear signal" test_fires_on_clear_signal;
    case "numeric sparse" test_numeric_sparse;
    case "numeric mode required" test_numeric_mode_required;
    case "multi-firing budget" test_multi_firing;
    case "multi-firing validation" test_multi_firing_validation;
    case "rejects after halt" test_rejects_after_halt;
    case "accuracy theorem rate" test_accuracy_theorem;
    case "accuracy bound formula" test_accuracy_bound_formula;
    case "astronomic threshold never fires" test_threshold_noise_once;
  ]
