type result = { value : float; target_rank : float }

let rank_quality values ~target v =
  let below = Array.fold_left (fun acc x -> if x <= v then acc + 1 else acc) 0 values in
  -.Float.abs (float_of_int below -. target)

let quantile rng ?(profile = Profile.practical) ~grid ~eps ~q values =
  if Geometry.Grid.dim grid <> 1 then invalid_arg "Quantile.quantile: grid must be 1-D";
  if not (q >= 0. && q <= 1.) then invalid_arg "Quantile.quantile: q must be in [0, 1]";
  if not (eps > 0.) then invalid_arg "Quantile.quantile: eps must be positive";
  let n = Array.length values in
  let target = q *. float_of_int n in
  let axis = Geometry.Grid.axis_size grid in
  let step = Geometry.Grid.step grid in
  Obs.Span.with_charged ~cat:"stage"
    ~attrs:(fun () -> [ ("q", Obs.Span.F q); ("axis", Obs.Span.I axis) ])
    ~eps ~delta:0. "quantile"
  @@ fun () ->
  let quality =
    Recconcave.Quality.create ~size:axis ~f:(fun i ->
        rank_quality values ~target (float_of_int i *. step))
  in
  let report = Recconcave.Rec_concave.solve rng ~eps ~base:profile.Profile.rc_base quality in
  { value = float_of_int report.Recconcave.Rec_concave.chosen *. step; target_rank = target }

let median rng ?profile ~grid ~eps values = quantile rng ?profile ~grid ~eps ~q:0.5 values

let interquartile_range rng ?profile ~grid ~eps values =
  let lo = quantile rng ?profile ~grid ~eps:(eps /. 2.) ~q:0.25 values in
  let hi = quantile rng ?profile ~grid ~eps:(eps /. 2.) ~q:0.75 values in
  (lo.value, hi.value)

let rank_error_bound ?(profile = Profile.practical) ~grid ~eps ~beta () =
  Recconcave.Rec_concave.loss_bound ~base:profile.Profile.rc_base
    ~size:(Geometry.Grid.axis_size grid) ~eps ~beta ()
