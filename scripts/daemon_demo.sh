#!/usr/bin/env bash
# Acceptance session for privclusterd's journaled budget ledger:
#
#   1. register a dataset and spend to near exhaustion,
#   2. kill -9 the daemon (no drain, no settling),
#   3. restart on the same WAL and re-register: the replayed ledger must
#      equal the pre-crash ledger and Obs.Attribution must reconcile,
#   4. an over-budget job must still be refused after recovery,
#   5. a shed request (per-tenant in-flight cap) must charge nothing.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${OUT_DIR:-daemon-demo}"
mkdir -p "$OUT_DIR"
rm -f "$OUT_DIR"/*

dune build bin/privcluster_cli.exe
CLI=_build/default/bin/privcluster_cli.exe
SOCK="$OUT_DIR/privclusterd.sock"
WAL="$OUT_DIR/privclusterd.wal"

serve() { # serve LOG TRACE
  "$CLI" serve --socket "$SOCK" --wal "$WAL" --tenant acme:s3cret:1 \
    --jobs 1 --trace "$2" >"$1" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 100); do
    grep -q "privclusterd listening" "$1" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "privclusterd listening" "$1"
}

client() { "$CLI" client "$@" --socket "$SOCK" --tenant acme --token s3cret; }

spent_block() { sed -n '/"spent"/,/}/p' "$1"; }

cat > "$OUT_DIR/jobs.txt" <<'EOF'
one_cluster t_fraction=0.45 eps=0.3 delta=1e-7 id=cluster
quantile    q=0.5 axis=0 eps=0.1 id=median
EOF

echo "== session 1: register and spend to near exhaustion =="
serve "$OUT_DIR/serve1.log" "$OUT_DIR/trace1.json"
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT

client register --dataset d1 --points 800 --axis 128 \
  --budget-eps 1 --budget-delta 1e-5 >/dev/null
# two batches at (0.3 + 0.1): 0.8 of the 1.0 ε budget
client run --dataset d1 --seed 1 "$OUT_DIR/jobs.txt" >/dev/null
client run --dataset d1 --seed 2 "$OUT_DIR/jobs.txt" >/dev/null
client ledger --dataset d1 > "$OUT_DIR/ledger_before.json"
spent_block "$OUT_DIR/ledger_before.json"

echo "== crash: kill -9, no drain =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
test -s "$WAL"

echo "== session 2: restart on the same WAL =="
serve "$OUT_DIR/serve2.log" "$OUT_DIR/trace2.json"

# re-registering replays the journal; the budget is pinned by the WAL
client register --dataset d1 --points 800 --axis 128 \
  --budget-eps 1 --budget-delta 1e-5 > "$OUT_DIR/reregister.json"
grep -q '"replayed": true' "$OUT_DIR/reregister.json"

client ledger --dataset d1 > "$OUT_DIR/ledger_after.json"
if [ "$(spent_block "$OUT_DIR/ledger_before.json")" != "$(spent_block "$OUT_DIR/ledger_after.json")" ]; then
  echo "FAIL: replayed spend differs from the pre-crash ledger" >&2
  exit 1
fi
echo "replayed ledger matches the pre-crash spend"

# the traced daemon attaches an Obs.Attribution reconciliation to the
# ledger reply: replayed charges must still reconcile span-by-span
grep -q '"ok": true' "$OUT_DIR/ledger_after.json"
echo "attribution reconciles after replay"

echo "== over-budget job refused after recovery =="
client run --dataset d1 --seed 3 "$OUT_DIR/jobs.txt" > "$OUT_DIR/run3.json"
grep -q '"refused"' "$OUT_DIR/run3.json"   # 0.8 + 0.3 > 1.0: cluster job refused
grep -q '"ok"' "$OUT_DIR/run3.json"        # 0.1 median still fits

echo "== shed request charges nothing (in-flight cap 1) =="
# The batch must still be in flight when the concurrent request lands;
# n is sized so 12 jobs outlast client startup even with the native
# kernels active (n = 3000 stopped being slow enough in PR 8).
client register --dataset d2 --points 20000 \
  --budget-eps 50 --budget-delta 1e-3 >/dev/null
{
  for i in $(seq 12); do
    echo "one_cluster t_fraction=0.45 eps=0.5 delta=1e-7 id=h$i"
  done
} > "$OUT_DIR/heavy.txt"
client run --dataset d2 --seed 4 "$OUT_DIR/heavy.txt" > "$OUT_DIR/heavy1.json" &
HEAVY=$!
sleep 0.3
set +e
client run --dataset d2 --seed 5 "$OUT_DIR/heavy.txt" > "$OUT_DIR/heavy2.json" 2> "$OUT_DIR/heavy2.err"
SHED_RC=$?
set -e
wait "$HEAVY"
if [ "$SHED_RC" -ne 3 ]; then
  echo "FAIL: expected the concurrent run to be shed (exit 3), got $SHED_RC" >&2
  exit 1
fi
grep -q 'tenant_cap' "$OUT_DIR/heavy2.err"
client ledger --dataset d2 > "$OUT_DIR/ledger_d2.json"
# count within the charges block only (the traced attribution report
# below it also names every job label once)
sed -n '/"charges"/,/\]/p' "$OUT_DIR/ledger_d2.json" > "$OUT_DIR/charges_d2.txt"
for i in 1 12; do
  n=$(grep -c "\"h$i\"" "$OUT_DIR/charges_d2.txt")
  if [ "$n" -ne 1 ]; then
    echo "FAIL: job h$i charged $n times; the shed batch must charge nothing" >&2
    exit 1
  fi
done
echo "shed request charged nothing"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
grep -q "privclusterd: clean drain" "$OUT_DIR/serve2.log"
echo "daemon demo OK"
