lib/prim/stability_hist.ml: Array Hashtbl List Rng
