examples/private_kmeans.ml: Array Float Format Geometry Prim Printf Privcluster
