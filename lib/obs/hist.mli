(** Mergeable log-bucketed latency histograms.

    Observations are integer nanoseconds accumulated into log-spaced
    buckets (factor [sqrt 2] per bucket, ~41% relative quantile error
    worst-case) plus an {e exact} integer count / sum and exact min /
    max.  Recording is lock-free: a histogram owns a small array of
    shards, each made of [Atomic.t] counters, and an observation picks a
    shard by the calling domain's id (or an explicit [~shard] hint) and
    does one [fetch_and_add] per field.  Shards are merged only at
    scrape time into an immutable {!snapshot}, so the hot path never
    takes a lock and never allocates.

    Because count and sum are exact integers, merging shard snapshots is
    associative and loss-free: a snapshot of N shards equals the
    snapshot of one shard fed the concatenated stream (property-tested
    in [test_obs.ml]).  Quantiles interpolate linearly inside the
    bucket holding the target rank and are clamped to the observed
    [min .. max], so a singleton histogram reports every quantile as
    exactly the observed value. *)

val bucket_bounds_ns : int array
(** Upper bucket bounds in nanoseconds, strictly ascending; first bound
    is 1000 (1 µs), last ~47 s.  Observations above the last bound land
    in an implicit overflow bucket. *)

type t
(** A live histogram: lock-free shards, written concurrently. *)

val create : ?shards:int -> unit -> t
(** [shards] defaults to 8 and is clamped to [1 .. 64]. *)

val observe_ns : ?shard:int -> t -> int -> unit
(** Record one observation in nanoseconds (negative values clamp to 0).
    The shard is chosen by [Domain.self ()] unless [~shard] is given
    (tests use the hint to pin streams to specific shards). *)

val observe_span_ns : t -> start_ns:int64 -> stop_ns:int64 -> unit
(** [observe_ns] of [stop_ns - start_ns] from {!Clock.now_ns} stamps. *)

(** {2 Snapshots} *)

type snapshot = {
  counts : int array;  (** Per-bucket counts; length [bounds + 1] (overflow last). *)
  count : int;  (** Exact total observations. *)
  sum_ns : int;  (** Exact total of observed nanoseconds. *)
  min_ns : int;  (** [max_int] when empty. *)
  max_ns : int;  (** [0] when empty. *)
}

val empty : snapshot

val snapshot : t -> snapshot
(** Merge all shards.  Concurrent writers may land observations between
    field reads, so a racing snapshot is a valid snapshot of {e some}
    interleaving, monotone in each field. *)

val merge : snapshot -> snapshot -> snapshot

val quantile_ns : snapshot -> q:float -> float
(** Estimated [q]-quantile in nanoseconds ([q] clamped to [0 .. 1]);
    [nan] when empty.  Monotone in [q]; exact for singletons. *)

val mean_ns : snapshot -> float
(** [nan] when empty. *)

val to_prom : snapshot -> Prom.hist
(** Prometheus histogram with bounds and sum converted to {e seconds}. *)

val to_json : snapshot -> Json.t
(** Compact dump: count, sum/min/max in ns, default quantiles
    (p50/p90/p99/max) in seconds, and the non-zero buckets as
    [[le_ns, count]] pairs. *)
