test/test_grid.ml: Alcotest Array Geometry Printf Testutil
