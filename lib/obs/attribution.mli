(** Budget attribution: reconcile trace spans against the accountant
    ledger.

    Three views of the same privacy spend exist in a traced run:

    + the {e ledger} — what the engine's accountant actually recorded
      (one entry per admitted charge, plus committed fallback
      reservations labelled [<id>:fallback]);
    + {e budget events} — zero-duration [cat="budget"] spans the engine
      emits at each ledger operation ([charge] / [reserve] / [commit] /
      [release] / [refuse]), carrying the label and parameters;
    + {e execution spans} — [cat="job"] root spans wrapping each job's
      mechanism work, whose {!Span.attributed} total is what the traced
      mechanisms say they consumed.

    {!reconcile} checks, per label: ledger = counted budget events
    ({e hard} — any mismatch sets [ok = false]); executed ≤ ledger
    ({e hard} — overspend means a mechanism drew more than was paid
    for); executed = ledger ({e informational} [exact] — stages may
    legitimately under-consume, e.g. [k_cluster] stopping early, or a
    job may have no execution span at all when it timed out before
    starting).

    Retried jobs replay bit-identically: execution spans are grouped by
    (label, RNG stream) and only the last attempt is counted, but every
    attempt must attribute the same charge ([retry_consistent]). *)

type line = {
  label : string;
  ledger : Span.charge;  (** Sum of ledger entries with this label. *)
  events : Span.charge;  (** Sum of [charge]+[commit] budget events. *)
  executed : Span.charge option;
      (** Deduplicated execution-subtree total; [None] when the label
          never started executing. *)
  events_ok : bool;  (** [ledger = events]. *)
  overspend : bool;  (** [executed > ledger] in any component. *)
  exact : bool;  (** [executed = ledger]. *)
  retry_consistent : bool;
      (** All non-errored attempts of every (label, stream) attributed
          equally (a crashed attempt's partial subtree is exempt). *)
}

type report = {
  lines : line list;  (** Sorted by label. *)
  ledger_total : Span.charge;
  executed_total : Span.charge;
  ok : bool;  (** No event mismatch, no overspend, retries consistent. *)
  exact : bool;  (** Every line with an execution span is exact. *)
}

val reconcile : ledger:(string * Span.charge) list -> Span.span list -> report

val to_text : report -> string
(** Human-readable table plus a one-line verdict. *)

val to_json : report -> Json.t
