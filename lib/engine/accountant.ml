type mode = Basic | Advanced of { slack : float } | Zcdp of { slack : float }

let mode_name = function Basic -> "basic" | Advanced _ -> "advanced" | Zcdp _ -> "zcdp"

let mode_of_string ?(slack = 1e-9) = function
  | "basic" -> Ok Basic
  | "advanced" -> Ok (Advanced { slack })
  | "zcdp" -> Ok (Zcdp { slack })
  | s -> Error (Printf.sprintf "unknown composition mode %S (expected basic|advanced|zcdp)" s)

type refusal = {
  requested : Prim.Dp.params;
  would_spend : Prim.Dp.params;
  spent : Prim.Dp.params;
  budget : Prim.Dp.params;
}

type event =
  | Charged of { label : string; cost : Prim.Dp.params }
  | Refused of { label : string; cost : Prim.Dp.params; reserve : bool; refusal : refusal }
  | Reserved of { id : int; label : string; cost : Prim.Dp.params }
  | Committed of { id : int; label : string; cost : Prim.Dp.params }
  | Released of { id : int; label : string; cost : Prim.Dp.params }

type t = {
  mode : mode;
  budget : Prim.Dp.params;
  mutable charges : (string * Prim.Dp.params) list;  (* reverse charge order *)
  mutable reservations : (int * string * Prim.Dp.params) list;  (* outstanding only *)
  mutable next_reservation : int;
  mutable refusals : int;
  mutable listeners : (event -> unit) list;  (* reverse subscription order *)
}

type reservation = int

let create ?(mode = Basic) ~budget () =
  {
    mode;
    budget;
    charges = [];
    reservations = [];
    next_reservation = 0;
    refusals = 0;
    listeners = [];
  }

let subscribe t f = t.listeners <- f :: t.listeners

(* Listeners observe the ledger, they never steer it: events fire after the
   state change, in subscription order, and the decision that produced them
   is already final. *)
let emit t ev = List.iter (fun f -> f ev) (List.rev t.listeners)
let mode t = t.mode
let budget (t : t) = t.budget

let zero = { Prim.Dp.eps = 0.; delta = 0. }

(* Composed total of a charge list under the mode.  The advanced bound only
   applies to homogeneous charges.  Basic and advanced are both valid (ε, δ)
   pairs for the same composed mechanism, so we may report either; we pick
   the one with the smaller ε (advanced pays an extra δ' on the delta side,
   so a coordinate-wise min would not be a guarantee the mechanism has). *)
let total mode charges =
  match charges with
  | [] -> zero
  | _ :: _ -> (
      let basic = Prim.Composition.basic_list (List.map snd charges) in
      match mode with
      | Basic -> basic
      | Advanced { slack } ->
          let p0 = snd (List.hd charges) in
          let homogeneous =
            List.for_all
              (fun (_, p) -> p.Prim.Dp.eps = p0.Prim.Dp.eps && p.Prim.Dp.delta = p0.Prim.Dp.delta)
              charges
          in
          if not homogeneous then basic
          else
            let adv = Prim.Composition.advanced p0 ~k:(List.length charges) ~delta':slack in
            if adv.Prim.Dp.eps < basic.Prim.Dp.eps then adv else basic
      | Zcdp { slack } ->
          let rho =
            Prim.Zcdp.compose
              (List.map (fun (_, p) -> Prim.Zcdp.of_pure_dp ~eps:p.Prim.Dp.eps) charges)
          in
          let conv = Prim.Zcdp.to_dp rho ~delta:slack in
          {
            Prim.Dp.eps = conv.Prim.Dp.eps;
            delta = conv.Prim.Dp.delta +. basic.Prim.Dp.delta;
          })

let spent t = total t.mode t.charges

(* Headroom checks see every outstanding reservation as if it were already
   committed — a reservation is a promise the fallback charge will fit, so
   admission must be conservative against it. *)
let committed_and_reserved t =
  List.rev_append (List.rev_map (fun (_, label, p) -> (label, p)) t.reservations) t.charges

let tol = 1e-9

let fits budget p =
  p.Prim.Dp.eps <= budget.Prim.Dp.eps +. tol && p.Prim.Dp.delta <= budget.Prim.Dp.delta +. tol

let would_accept (t : t) p = fits t.budget (total t.mode ((" ", p) :: committed_and_reserved t))

let admit t ~label ~is_reserve p ~accept =
  let before = spent t in
  let after = total t.mode ((label, p) :: committed_and_reserved t) in
  if fits t.budget after then begin
    accept ();
    Ok ()
  end
  else begin
    t.refusals <- t.refusals + 1;
    let refusal = { requested = p; would_spend = after; spent = before; budget = t.budget } in
    emit t (Refused { label; cost = p; reserve = is_reserve; refusal });
    Error refusal
  end

let charge t ?(label = "anon") p =
  admit t ~label ~is_reserve:false p ~accept:(fun () ->
      t.charges <- (label, p) :: t.charges;
      emit t (Charged { label; cost = p }))

let reserve t ?(label = "reserved") p =
  let id = t.next_reservation in
  match
    admit t ~label ~is_reserve:true p ~accept:(fun () ->
        t.next_reservation <- id + 1;
        t.reservations <- (id, label, p) :: t.reservations;
        emit t (Reserved { id; label; cost = p }))
  with
  | Ok () -> Ok id
  | Error r -> Error r

let take_reservation t who id =
  match List.partition (fun (i, _, _) -> i = id) t.reservations with
  | [ entry ], rest ->
      t.reservations <- rest;
      entry
  | _ -> invalid_arg (Printf.sprintf "Accountant.%s: unknown or already-settled reservation" who)

let commit t id =
  let _, label, p = take_reservation t "commit" id in
  t.charges <- (label, p) :: t.charges;
  emit t (Committed { id; label; cost = p })

let release t id =
  let _, label, p = take_reservation t "release" id in
  emit t (Released { id; label; cost = p })

let reserved t = List.rev_map (fun (_, label, p) -> (label, p)) t.reservations
let outstanding t = List.rev_map (fun (id, label, p) -> (id, label, p)) t.reservations

let entries t = List.rev t.charges
let refusals t = t.refusals

let pp_refusal ppf r =
  Format.fprintf ppf
    "budget exhausted: charge (%g, %g) would compose to (%g, %g), budget is (%g, %g), already spent (%g, %g)"
    r.requested.Prim.Dp.eps r.requested.Prim.Dp.delta r.would_spend.Prim.Dp.eps
    r.would_spend.Prim.Dp.delta r.budget.Prim.Dp.eps r.budget.Prim.Dp.delta r.spent.Prim.Dp.eps
    r.spent.Prim.Dp.delta

let refusal_message r = Format.asprintf "%a" pp_refusal r

let params_json p = Json.Obj [ ("eps", Json.Float p.Prim.Dp.eps); ("delta", Json.Float p.Prim.Dp.delta) ]

let to_json (t : t) =
  let s = spent t in
  Json.Obj
    [
      ("mode", Json.String (mode_name t.mode));
      ("budget", params_json t.budget);
      ("spent", params_json s);
      ( "remaining",
        params_json
          {
            Prim.Dp.eps = Float.max 0. (t.budget.Prim.Dp.eps -. s.Prim.Dp.eps);
            delta = Float.max 0. (t.budget.Prim.Dp.delta -. s.Prim.Dp.delta);
          } );
      ("refusals", Json.Int t.refusals);
      ( "reserved",
        Json.List
          (List.map
             (fun (label, p) -> Json.Obj [ ("label", Json.String label); ("params", params_json p) ])
             (reserved t)) );
      ( "charges",
        Json.List
          (List.map
             (fun (label, p) -> Json.Obj [ ("label", Json.String label); ("params", params_json p) ])
             (entries t)) );
    ]
