lib/prim/subsample.mli: Dp
